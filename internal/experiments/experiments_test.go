package experiments

import (
	"strings"
	"testing"

	"throughputlab/internal/topology"
)

// env is shared across the package's tests: building it is the
// expensive part (world generation + corpus + per-VP campaigns).
var env = func() *Env {
	e, err := NewEnv(QuickOptions())
	if err != nil {
		panic(err)
	}
	return e
}()

func TestFig1Shapes(t *testing.T) {
	r := Fig1(env)
	if len(r.Rows) != 9 {
		t.Fatalf("Figure 1 has %d ISPs, want 9", len(r.Rows))
	}
	byISP := map[string]Fig1Row{}
	for _, row := range r.Rows {
		byISP[row.ISP] = row
	}
	// Paper: top-5 providers mostly one hop (>80% except TWC ~75%).
	for _, isp := range []string{"Comcast", "AT&T", "Verizon", "CenturyLink"} {
		row := byISP[isp]
		if row.Matched < 50 {
			t.Errorf("%s has only %d matched traces", isp, row.Matched)
			continue
		}
		if row.FracOne < 0.7 {
			t.Errorf("%s one-hop fraction %.2f, want high (paper >0.8)", isp, row.FracOne)
		}
	}
	// Paper: Charter 37%, Cox 39%, Frontier 47% — notably lower.
	for _, isp := range []string{"Charter", "Cox"} {
		row := byISP[isp]
		if row.Matched >= 30 && row.FracOne > 0.65 {
			t.Errorf("%s one-hop fraction %.2f, want low (paper ~0.4)", isp, row.FracOne)
		}
	}
	// Paper: Windstream only 6%.
	if row := byISP["Windstream"]; row.Matched >= 20 && row.FracOne > 0.3 {
		t.Errorf("Windstream one-hop fraction %.2f, want very low (paper 0.06)", row.FracOne)
	}
	// Ordering: Comcast tops Charter/Cox/Windstream.
	if byISP["Comcast"].FracOne <= byISP["Charter"].FracOne ||
		byISP["Comcast"].FracOne <= byISP["Windstream"].FracOne {
		t.Error("Figure 1 ordering violated")
	}
	// §4.2 aggregate: most-but-not-all traces direct (paper 82%).
	if r.OverallDirect < 0.55 || r.OverallDirect > 0.97 {
		t.Errorf("overall direct fraction %.2f outside plausible band around 0.82", r.OverallDirect)
	}
	if !strings.Contains(r.Render(), "Comcast") {
		t.Error("render missing rows")
	}
}

func TestTable2Shapes(t *testing.T) {
	r := Table2(env)
	if len(r.Rows) == 0 {
		t.Fatal("Table 2 empty")
	}
	var multiLink, multiASN int
	isps := map[string]int{}
	coxLinks := 0
	coxGroups := 0
	for _, row := range r.Rows {
		isps[row.ISP]++
		if len(row.TestsPerLink) > 1 {
			multiLink++
		}
		if row.ISP == "Cox" {
			coxLinks += len(row.TestsPerLink)
			coxGroups += row.RouterGroups
		}
	}
	for _, n := range isps {
		if n > 1 {
			multiASN++
		}
	}
	// Paper: AS-level aggregation masks multiple IP links…
	if multiLink == 0 {
		t.Error("no client ASN crossed multiple IP-level links (Assumption 3 trivially true)")
	}
	// …and sibling ASNs appear as separate rows (Comcast's AS7725 etc.).
	if multiASN == 0 {
		t.Error("no ISP split across sibling ASNs")
	}
	// Cox's parallel links collapse into fewer DNS router groups.
	if coxLinks > 0 && coxGroups >= coxLinks {
		t.Logf("Cox: %d links in %d router groups (parallelism not visible at this scale)", coxLinks, coxGroups)
	}
	// Distribution across links is not uniform: check some row has a
	// dominant link.
	skewed := false
	for _, row := range r.Rows {
		if len(row.TestsPerLink) >= 2 && row.TestsPerLink[0] >= 3*row.TestsPerLink[len(row.TestsPerLink)-1] {
			skewed = true
		}
	}
	if !skewed {
		t.Log("note: no strongly skewed link distribution in this corpus")
	}
}

func TestTable3Shapes(t *testing.T) {
	r := Table3(env)
	if len(r.Rows) != 16 {
		t.Fatalf("Table 3 has %d VPs, want 19", len(r.Rows))
	}
	byLabel := map[string]*VPAnalysis{}
	for _, v := range r.Rows {
		byLabel[v.Label] = v
	}
	bed := byLabel["bed-us"]   // Comcast
	igx := byLabel["igx-us"]   // Frontier
	wvi := byLabel["wvi-us"]   // Sonic
	san6 := byLabel["san6-us"] // AT&T
	if bed == nil || igx == nil || wvi == nil || san6 == nil {
		t.Fatal("paper VP labels missing")
	}
	// Shape: transit-heavy ISPs have far more borders than small ones.
	if bed.Borders.ASCount <= igx.Borders.ASCount {
		t.Errorf("Comcast borders (%d) should exceed Frontier (%d)",
			bed.Borders.ASCount, igx.Borders.ASCount)
	}
	if san6.Borders.ASCount <= wvi.Borders.ASCount {
		t.Errorf("AT&T borders (%d) should exceed Sonic (%d)",
			san6.Borders.ASCount, wvi.Borders.ASCount)
	}
	// Customers dominate for the transit sellers.
	for _, label := range []string{"bed-us", "san6-us", "aza-us"} {
		v := byLabel[label]
		cust := v.Borders.ByRel[topology.RelCustomer]
		peer := v.Borders.ByRel[topology.RelPeer]
		if cust.AS <= peer.AS {
			t.Errorf("%s: customers (%d) should outnumber peers (%d)", label, cust.AS, peer.AS)
		}
	}
	// Router-level ≥ AS-level everywhere.
	for _, v := range r.Rows {
		if v.Borders.RouterCount < v.Borders.ASCount {
			t.Errorf("%s: router count %d < AS count %d", v.Label, v.Borders.RouterCount, v.Borders.ASCount)
		}
	}
}

func TestFig2CoverageShapes(t *testing.T) {
	r := Fig2(env)
	if len(r.Rows) != 16 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BdrmapAS == 0 {
			t.Errorf("%s: no borders", row.Label)
			continue
		}
		fm := float64(row.MLabAS) / float64(row.BdrmapAS)
		fs := float64(row.SpeedAS) / float64(row.BdrmapAS)
		// Paper: M-Lab covers 0.4–9% of all AS interconnections;
		// Speedtest 2.3–28%. Allow a wide band, but the coverage must
		// be a small minority. VPs with tiny border sets (Sonic,
		// Frontier at this scale) have noisy ratios; skip the band.
		if row.BdrmapAS >= 25 {
			if fm > 0.35 {
				t.Errorf("%s: M-Lab covers %.0f%%, too high", row.Label, 100*fm)
			}
			if fs > 0.6 {
				t.Errorf("%s: Speedtest covers %.0f%%, too high", row.Label, 100*fs)
			}
		}
	}
	// Speedtest beats M-Lab for most VPs (its fleet is larger and
	// broader).
	wins := 0
	for _, row := range r.Rows {
		if row.SpeedAS > row.MLabAS {
			wins++
		}
	}
	if wins < len(r.Rows)*2/3 {
		t.Errorf("Speedtest out-covers M-Lab at only %d/16 VPs", wins)
	}
}

func TestFig3PeerCoverageShapes(t *testing.T) {
	r2 := Fig2(env)
	r3 := Fig3(env)
	f2 := map[string]CoverageRow{}
	for _, row := range r2.Rows {
		f2[row.Label] = row
	}
	higher := 0
	for _, row := range r3.Rows {
		all := f2[row.Label]
		if row.BdrmapAS == 0 || all.BdrmapAS == 0 {
			continue
		}
		fPeer := float64(row.MLabAS) / float64(row.BdrmapAS)
		fAll := float64(all.MLabAS) / float64(all.BdrmapAS)
		if fPeer > fAll {
			higher++
		}
		// Peer denominators are much smaller than ALL.
		if row.BdrmapAS >= all.BdrmapAS {
			t.Errorf("%s: peer borders %d not below all borders %d", row.Label, row.BdrmapAS, all.BdrmapAS)
		}
	}
	// Paper: both platforms cover peers better than all interconnects.
	if higher < 8 {
		t.Errorf("peer coverage exceeds all-coverage at only %d/16 VPs", higher)
	}
}

func TestFig4Shapes(t *testing.T) {
	r := Fig4(env)
	if len(r.Rows) != 16 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AlexaTotal == 0 {
			t.Errorf("%s: no alexa-path interconnections", row.Label)
			continue
		}
		// Paper: 79–90% of interconnections on popular-content paths
		// were NOT covered by M-Lab. Require a strong majority where
		// the denominator supports a percentage claim (tiny ISPs like
		// Frontier funnel all content through a few transits at this
		// scale).
		frac := float64(row.AlexaNotMLab) / float64(row.AlexaTotal)
		if row.AlexaTotal >= 15 && frac < 0.4 {
			t.Errorf("%s: only %.0f%% of alexa interconnections uncovered by M-Lab (paper 79-90%%)",
				row.Label, 100*frac)
		}
		// Speedtest leaves less uncovered than M-Lab (its fleet is
		// broader) for most VPs — checked in aggregate below.
	}
	better := 0
	for _, row := range r.Rows {
		if row.AlexaNotSpeed <= row.AlexaNotMLab {
			better++
		}
	}
	if better < 10 {
		t.Errorf("Speedtest uncovers less than M-Lab at only %d/16 VPs", better)
	}
}

func TestFig5Shapes(t *testing.T) {
	r := Fig5(env)
	if len(r.Panels) != 2 {
		t.Fatal("Figure 5 needs two panels")
	}
	att, com := r.Panels[0], r.Panels[1]
	if att.ClientISP != "AT&T" || com.ClientISP != "Comcast" {
		t.Fatal("panel order wrong")
	}
	if att.Verdict.InsufficientData {
		t.Fatalf("AT&T panel undecidable (peak %d off %d)", att.Verdict.PeakN, att.Verdict.OffN)
	}
	// Congested panel: deep drop, peak median ~<2 Mbps.
	if !att.Verdict.Congested {
		t.Errorf("AT&T-GTT not flagged congested: %+v", att.Verdict)
	}
	if att.Verdict.PeakMedian > 3 {
		t.Errorf("AT&T peak median %.1f Mbps, want collapse (paper <1)", att.Verdict.PeakMedian)
	}
	// Busy panel: shallower dip, not flagged.
	if com.Verdict.InsufficientData {
		t.Skipf("Comcast panel thin: peak %d off %d", com.Verdict.PeakN, com.Verdict.OffN)
	}
	if com.Verdict.Congested {
		t.Errorf("Comcast-GTT flagged congested with drop %.2f", com.Verdict.Drop)
	}
	if com.Verdict.Drop < 0.02 {
		t.Logf("note: Comcast dip only %.2f (paper ~0.2-0.3)", com.Verdict.Drop)
	}
	// Sample counts: evening ≥ 3am (time-of-day bias visible in the
	// right-hand panels of Figure 5).
	for _, p := range r.Panels {
		if p.Counts[21] <= p.Counts[4] {
			t.Errorf("%s: 21h samples (%d) not above 4h (%d)", p.ClientISP, p.Counts[21], p.Counts[4])
		}
	}
}

func TestMatchingShapes(t *testing.T) {
	r := Matching(env)
	if len(r.Rows) < 4 {
		t.Fatal("window sweep too short")
	}
	// Monotone in window size; Around ≥ After at each window.
	for i, row := range r.Rows {
		if row.AroundRate < row.AfterRate {
			t.Errorf("window %d: around %.2f < after %.2f", row.WindowMin, row.AroundRate, row.AfterRate)
		}
		if i > 0 && row.AfterRate < r.Rows[i-1].AfterRate-0.001 {
			t.Error("after-rate not monotone in window")
		}
	}
	// The 10-minute row matches the paper's regime: substantial but
	// incomplete.
	var ten struct {
		WindowMin  int
		AfterRate  float64
		AroundRate float64
	}
	for _, row := range r.Rows {
		if row.WindowMin == 10 {
			ten = row
		}
	}
	if ten.AfterRate < 0.5 || ten.AfterRate > 0.98 {
		t.Errorf("10-min after rate %.2f outside plausible band (paper 71-76%%)", ten.AfterRate)
	}
	if r.LostToBusyCollector == 0 {
		t.Error("busy collector lost nothing; artifact missing")
	}
}

func TestThresholdShapes(t *testing.T) {
	r := Thresholds(env)
	if r.Groups < 5 {
		t.Skipf("only %d groups", r.Groups)
	}
	// There must exist a threshold with perfect recall and another with
	// zero false positives, and they are generally not the same — the
	// §6.2 tension.
	var anyFullRecall, anyNoFP bool
	for _, p := range r.Points {
		if p.Recall() == 1 && p.TruePos > 0 {
			anyFullRecall = true
		}
		if p.FalsePos == 0 {
			anyNoFP = true
		}
	}
	if !anyFullRecall {
		t.Error("no threshold achieves full recall")
	}
	if !anyNoFP {
		t.Error("no threshold avoids false positives")
	}
	// Low thresholds over-flag: the lowest threshold should produce
	// false positives (diurnal dips on healthy groups).
	if r.Points[0].FalsePos == 0 {
		t.Logf("note: no false positives even at threshold %.2f", r.Points[0].Threshold)
	}
}

func TestBiasShapes(t *testing.T) {
	r := BiasDiagnostics(env)
	if len(r.Rows) < 10 {
		t.Fatalf("only %d ISPs", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Tests < 100 {
			continue
		}
		if row.Report.NightToEveningRatio > 0.8 {
			t.Errorf("%s: night/evening ratio %.2f — time-of-day bias missing", row.ISP, row.Report.NightToEveningRatio)
		}
	}
}

func TestTomographyShapes(t *testing.T) {
	r := Tomography(env)
	if r.BadTests == 0 {
		t.Skip("no bad peak tests")
	}
	if len(r.BadLinks) == 0 {
		t.Fatal("full tomography found no bad links")
	}
	// Most inferred bad links should be truly congested.
	good := 0
	for _, b := range r.BadLinks {
		if b.TrulyCongested {
			good++
		}
	}
	if frac := float64(good) / float64(len(r.BadLinks)); frac < 0.5 {
		t.Errorf("only %.0f%% of inferred bad links are truly congested", 100*frac)
	}
	// The simplified method flags some pairs.
	flagged := 0
	for _, v := range r.ASVerdicts {
		if v.Congested {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("AS-level method flagged nothing")
	}
}

func TestSnapshotsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot experiment regenerates a second world")
	}
	r, err := Snapshots(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.MLabServersA != r.MLabServersB {
		t.Errorf("M-Lab fleet changed: %d -> %d (paper: exactly flat at 261)", r.MLabServersA, r.MLabServersB)
	}
	if r.SpeedServersB <= r.SpeedServersA {
		t.Errorf("Speedtest fleet did not grow: %d -> %d", r.SpeedServersA, r.SpeedServersB)
	}
	if len(r.Rows) < 5 {
		t.Errorf("only %d ISPs compared", len(r.Rows))
	}
}

func TestRegistryAndRunAll(t *testing.T) {
	names := Names()
	if len(names) != 19 {
		t.Errorf("%d experiments registered, want 19", len(names))
	}
	if _, ok := Find("fig5"); !ok {
		t.Error("fig5 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus experiment found")
	}
	// Each renders non-empty output (snapshots excluded in short mode).
	for _, entry := range Registry() {
		if entry.Name == "snapshots" && testing.Short() {
			continue
		}
		r, err := entry.Run(env)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if len(r.Render()) < 40 {
			t.Errorf("%s renders almost nothing", entry.Name)
		}
	}
}

func BenchmarkFig1ASHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig1(env)
	}
}

func BenchmarkTable2LinkDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table2(env)
	}
}

func BenchmarkFig5Diurnal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fig5(env)
	}
}

func TestSignaturesShapes(t *testing.T) {
	r := Signatures(env)
	if r.Confusion.Total < 500 {
		t.Skipf("only %d peak tests", r.Confusion.Total)
	}
	if acc := r.Confusion.Accuracy(); acc < 0.85 {
		t.Errorf("signature accuracy %.3f < 0.85", acc)
	}
	if r.Confusion.DeterminateFrac() < 0.5 {
		t.Errorf("determinate fraction %.2f too low", r.Confusion.DeterminateFrac())
	}
	// Sweep: a looser inflation threshold must not reduce the
	// determinate fraction.
	for i := 1; i < len(r.Sweep); i++ {
		if r.Sweep[i].MinInflation > r.Sweep[i-1].MinInflation &&
			r.Sweep[i].DeterminateFrac > r.Sweep[i-1].DeterminateFrac+0.001 {
			t.Error("raising the inflation threshold should not add determinate verdicts")
		}
	}
}

func TestTSLPShapes(t *testing.T) {
	r := TSLP(env)
	if r.TruePos == 0 {
		t.Fatal("TSLP found no saturated links")
	}
	if r.FalseNeg > 0 {
		t.Errorf("TSLP missed %d saturated links", r.FalseNeg)
	}
	if r.FalsePos > r.Links/10 {
		t.Errorf("TSLP flagged %d healthy links of %d", r.FalsePos, r.Links)
	}
	// Flagged list sorted by elevation.
	for i := 1; i < len(r.Flagged); i++ {
		if r.Flagged[i].Elevation > r.Flagged[i-1].Elevation {
			t.Fatal("flagged list unsorted")
		}
	}
}

func TestPlacementShapes(t *testing.T) {
	r := Placement(env)
	if len(r.Greedy) == 0 || len(r.Latency) == 0 {
		t.Fatal("empty plans")
	}
	g := r.Greedy[len(r.Greedy)-1]
	l := r.Latency[len(r.Latency)-1]
	if g < l {
		t.Errorf("topology-aware placement (%d) below latency-first (%d)", g, l)
	}
	if g > r.Universe {
		t.Error("covered more than coverable")
	}
	// The trajectory is nondecreasing.
	for i := 1; i < len(r.Greedy); i++ {
		if r.Greedy[i] < r.Greedy[i-1] {
			t.Fatal("greedy trajectory decreased")
		}
	}
}

func TestFig5CompanionDiurnals(t *testing.T) {
	// The M-Lab report's companion metrics: on the congested pair, flow
	// RTT and retransmission rates rise at peak hours along with the
	// throughput collapse.
	r := Fig5(env)
	att := r.Panels[0]
	peakRTT, offRTT := att.RTTMedian[21], att.RTTMedian[11]
	if !isNaN(peakRTT) && !isNaN(offRTT) && peakRTT <= offRTT {
		t.Errorf("congested pair peak RTT %.0f not above off-peak %.0f", peakRTT, offRTT)
	}
	peakLoss, offLoss := att.RetransMedian[21], att.RetransMedian[11]
	if !isNaN(peakLoss) && !isNaN(offLoss) && peakLoss <= offLoss {
		t.Errorf("congested pair peak retrans %.4f not above off-peak %.4f", peakLoss, offLoss)
	}
}

func isNaN(x float64) bool { return x != x }

func TestBattleForNetShapes(t *testing.T) {
	r, err := BattleForNet(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatal("want two modes")
	}
	base, bfn := r.Rows[0], r.Rows[1]
	if bfn.Tests <= base.Tests {
		t.Errorf("BfN tests %d not above base %d", bfn.Tests, base.Tests)
	}
	if bfn.ServerPairs <= base.ServerPairs {
		t.Errorf("BfN pairs %d not above base %d", bfn.ServerPairs, base.ServerPairs)
	}
	if bfn.IPLinks <= base.IPLinks {
		t.Errorf("BfN links %d not above base %d", bfn.IPLinks, base.IPLinks)
	}
	// The collector trade-off: association no better under flood.
	if bfn.MatchedFrac > base.MatchedFrac+0.02 {
		t.Errorf("BfN matched %.2f unexpectedly above base %.2f", bfn.MatchedFrac, base.MatchedFrac)
	}
}

func TestMatchingHighVolumeRegime(t *testing.T) {
	r := Matching(env)
	if r.HighVolumeTotal <= r.Total {
		t.Fatalf("high-volume corpus %d not above base %d", r.HighVolumeTotal, r.Total)
	}
	// §4.1: the 2017 corpus matched at about the same rate as 2015.
	var base float64
	for _, row := range r.Rows {
		if row.WindowMin == 10 {
			base = row.AfterRate
		}
	}
	diff := r.HighVolumeAfterRate - base
	if diff < -0.15 || diff > 0.15 {
		t.Errorf("high-volume rate %.2f far from base %.2f; the loss should be scheduling, not volume",
			r.HighVolumeAfterRate, base)
	}
}

func TestAblationShapes(t *testing.T) {
	r := Ablation(env)
	if r.LinksOn == 0 || r.LinksOff == 0 {
		t.Fatal("ablation inferred nothing")
	}
	// The far-side correction must improve link precision.
	if r.FarSideOnPrecision <= r.FarSideOffPrecision {
		t.Errorf("far-side correction precision %.3f not above naive %.3f",
			r.FarSideOnPrecision, r.FarSideOffPrecision)
	}
	// Router-level counts: none ≥ realistic ≥ perfect ≥ AS-level.
	if r.RouterPairsNone < r.RouterPairsRealistic || r.RouterPairsRealistic < r.RouterPairsPerfect {
		t.Errorf("router-pair ordering violated: none=%d realistic=%d perfect=%d",
			r.RouterPairsNone, r.RouterPairsRealistic, r.RouterPairsPerfect)
	}
	if r.RouterPairsPerfect < r.ASBorders {
		t.Errorf("router-level (%d) below AS-level (%d)", r.RouterPairsPerfect, r.ASBorders)
	}
}

func TestStratifiedShapes(t *testing.T) {
	r := Stratified(env)
	if len(r.Groups) == 0 {
		t.Skip("no aggregates large enough at this scale")
	}
	multi := 0
	for _, g := range r.Groups {
		if len(g.Links) > 1 {
			multi++
		}
		for _, l := range g.Links {
			if l.Tests <= 0 {
				t.Fatal("empty stratum")
			}
		}
	}
	if multi == 0 {
		t.Error("no aggregate splits across multiple IP links (Assumption 3 would be vacuous)")
	}
}

func TestAblationBidirectionalDiscoversMore(t *testing.T) {
	r := Ablation(env)
	if r.TrueLinksFwd == 0 {
		t.Fatal("no links discovered forward")
	}
	if r.TrueLinksBoth <= r.TrueLinksFwd {
		t.Errorf("bidirectional corpus found %d links, forward-only %d; reverse should add coverage",
			r.TrueLinksBoth, r.TrueLinksFwd)
	}
	// Accuracy must not collapse when mixing directions.
	if r.BothOperatorAcc < r.FwdOperatorAcc-0.05 {
		t.Errorf("bidirectional accuracy %.3f far below forward %.3f", r.BothOperatorAcc, r.FwdOperatorAcc)
	}
}
