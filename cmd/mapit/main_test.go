package main

import (
	"os"
	"path/filepath"
	"testing"

	"throughputlab/internal/export"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
)

func writeCorpus(t *testing.T) string {
	t.Helper()
	w := topogen.MustGenerate(topogen.SmallConfig())
	cfg := platform.DefaultCollect()
	cfg.Tests = 300
	cfg.PerPoolClients = 4
	corpus, err := platform.Collect(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "corpus.json")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := export.FromWorld(w, corpus).Write(f); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunOverDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	in := writeCorpus(t)
	if err := run(in, 10, 0.5); err != nil {
		t.Fatalf("mapit run: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent/x.json", 10, 0.5); err == nil {
		t.Error("missing file should error")
	}
}

func TestRunEmptyDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(out, []byte(`{"public":{"prefixes":null,"orgs":{},"rels":null}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(out, 10, 0.5); err == nil {
		t.Error("dataset without traces should error")
	}
}
