package experiments

import (
	"fmt"
	"math"
	"strings"

	"throughputlab/internal/core"
	"throughputlab/internal/ndt"
)

// Fig5Panel is one panel of Figure 5: a diurnal throughput series with
// sample counts for one (server, client ISP) group.
type Fig5Panel struct {
	ServerNet, ServerMetro, ClientISP string

	Mean, Stddev, Median [24]float64
	// RTTMedian and RetransMedian are the companion diurnals the M-Lab
	// report analyzed alongside throughput (§2.2: "download throughput,
	// flow round-trip time … and packet retransmission rates").
	RTTMedian, RetransMedian [24]float64
	Counts                   [24]int
	Verdict                  core.Verdict
}

// Fig5Result reproduces Figure 5: GTT Atlanta toward AT&T (congested)
// and toward Comcast (busy but not congested).
type Fig5Result struct {
	Panels []Fig5Panel
}

// Fig5 builds both panels from the corpus.
func Fig5(e *Env) *Fig5Result {
	res := &Fig5Result{}
	for _, isp := range []string{"AT&T", "Comcast"} {
		res.Panels = append(res.Panels, Fig5Panel_(e, "GTT", "atl", isp))
	}
	return res
}

// Fig5Panel_ builds one panel for an arbitrary group.
func Fig5Panel_(e *Env, serverNet, serverMetro, isp string) Fig5Panel {
	var tests []*ndt.Test
	for _, t := range e.Corpus.Tests {
		if t.ServerNet == serverNet && t.ServerMetro == serverMetro && t.ClientISP == isp {
			tests = append(tests, t)
		}
	}
	s := core.BuildSeries(tests, e.HourOf)
	cfg := core.DefaultDetector()
	cfg.MinSamples = 10
	p := Fig5Panel{
		ServerNet: serverNet, ServerMetro: serverMetro, ClientISP: isp,
		Mean:          s.Throughput.Means(),
		Stddev:        s.Throughput.Stddevs(),
		Median:        s.Throughput.Medians(),
		RTTMedian:     s.RTT.Medians(),
		RetransMedian: s.Retrans.Medians(),
		Counts:        s.Throughput.Counts(),
		Verdict:       core.Detect(s, cfg),
	}
	return p
}

// Render prints both panels hour by hour.
func (r *Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5 — diurnal throughput and sample counts, GTT Atlanta server\n")
	for _, p := range r.Panels {
		sb.WriteString(fmt.Sprintf("\n(%s %s → %s clients)\n", p.ServerNet, p.ServerMetro, p.ClientISP))
		var rows [][]string
		for h := 0; h < 24; h++ {
			f := func(x float64, digits int) string {
				if math.IsNaN(x) {
					return "-"
				}
				return fmt.Sprintf("%.*f", digits, x)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%02d", h),
				f(p.Mean[h], 1), f(p.Stddev[h], 1), f(p.Median[h], 1),
				f(p.RTTMedian[h], 0), f(100*p.RetransMedian[h], 2),
				fmt.Sprintf("%d", p.Counts[h]),
			})
		}
		sb.WriteString(table([]string{"hour", "mean Mbps", "stddev", "median", "RTT ms", "retrans %", "samples"}, rows))
		v := p.Verdict
		sb.WriteString(fmt.Sprintf("detector: peak median %.2f, off-peak %.2f, drop %s, peak CV %.2f, p=%.3g, congested=%v\n",
			v.PeakMedian, v.OffMedian, pct(v.Drop), v.PeakCV, v.PValue, v.Congested))
	}
	return sb.String()
}
