package geo

import (
	"math"
	"testing"
	"testing/quick"
)

var (
	atlanta = Metro{Code: "atl", Name: "Atlanta", Lat: 33.75, Lon: -84.39, UTCOffset: -5}
	nyc     = Metro{Code: "nyc", Name: "New York", Lat: 40.71, Lon: -74.01, UTCOffset: -5}
	la      = Metro{Code: "lax", Name: "Los Angeles", Lat: 34.05, Lon: -118.24, UTCOffset: -8}
)

func TestDistanceKnownPairs(t *testing.T) {
	// Atlanta–New York is roughly 1200 km; Atlanta–LA roughly 3100 km.
	d := DistanceKm(atlanta, nyc)
	if d < 1100 || d > 1300 {
		t.Errorf("atl-nyc distance = %.0f km, want ~1200", d)
	}
	d = DistanceKm(atlanta, la)
	if d < 2900 || d > 3300 {
		t.Errorf("atl-lax distance = %.0f km, want ~3100", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry and non-negativity over random coordinates.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Metro{Code: "a", Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Metro{Code: "b", Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-6 && d1 < 2*math.Pi*earthRadiusKm
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistanceSameMetroIsZero(t *testing.T) {
	if d := DistanceKm(atlanta, atlanta); d != 0 {
		t.Errorf("same-metro distance = %f", d)
	}
}

func TestPropagationDelay(t *testing.T) {
	// Same metro: small positive constant.
	if d := PropagationDelayMs(nyc, nyc); d <= 0 || d > 1 {
		t.Errorf("intra-metro delay = %f ms", d)
	}
	// Cross-country one-way should be tens of ms, well under 100.
	d := PropagationDelayMs(nyc, la)
	if d < 15 || d > 60 {
		t.Errorf("nyc-lax one-way delay = %.1f ms, want 15..60", d)
	}
	// Monotone in distance.
	if PropagationDelayMs(atlanta, nyc) >= PropagationDelayMs(atlanta, la) {
		t.Error("delay should grow with distance")
	}
}

func TestLocalHour(t *testing.T) {
	m := Metro{Code: "x", UTCOffset: -5}
	cases := []struct {
		minute int
		want   float64
	}{
		{0, 19},       // midnight UTC = 19:00 local at UTC-5
		{5 * 60, 0},   // 05:00 UTC = midnight local
		{17 * 60, 12}, // 17:00 UTC = noon local
		{29 * 60, 0},  // next day wraps
		{24 * 60, 19}, // full day later, same local hour
		{90, 20.5},    // fractional hours preserved
	}
	for _, c := range cases {
		if got := m.LocalHour(c.minute); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LocalHour(%d) = %v, want %v", c.minute, got, c.want)
		}
	}
}

func TestLocalHourRangeProperty(t *testing.T) {
	f := func(minute uint16, off int8) bool {
		m := Metro{UTCOffset: int(off % 12)}
		h := m.LocalHour(int(minute))
		return h >= 0 && h < 24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
