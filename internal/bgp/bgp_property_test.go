package bgp

import (
	"math/rand"
	"testing"

	"throughputlab/internal/topology"
)

// TestReachabilitySymmetry: in a Gao-Rexford world with a full transit
// peer mesh and provider chains everywhere, reachability is symmetric:
// a reaches b iff b reaches a. (Policy can break symmetry in pathological
// configurations, but not in the hierarchy randomHierarchy builds.)
func TestReachabilitySymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		tp := randomHierarchy(rng)
		r := Compute(tp)
		asns := tp.ASNs()
		for i, a := range asns {
			for _, b := range asns[i+1:] {
				if r.HasRoute(a, b) != r.HasRoute(b, a) {
					t.Fatalf("trial %d: asymmetric reachability %v/%v", trial, a, b)
				}
			}
		}
	}
}

// TestCustomerClassImpliesDownhillPath: when the route class at src is
// Customer, every edge of the path goes provider→customer (or sibling).
func TestCustomerClassImpliesDownhillPath(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tp := randomHierarchy(rng)
	r := Compute(tp)
	checked := 0
	for _, src := range tp.ASNs() {
		for _, dst := range tp.ASNs() {
			if src == dst || r.Class(src, dst) != ClassCustomer {
				continue
			}
			p := r.Path(src, dst)
			for i := 1; i < len(p); i++ {
				rel := tp.RelOf(p[i-1], p[i])
				if rel != topology.RelCustomer && rel != topology.RelSibling {
					t.Fatalf("customer-class path %v has %v edge", p, rel)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no customer-class routes checked")
	}
}

// TestPeerClassHasExactlyOnePeerEdge: peer-class paths cross exactly
// one peer edge and it is the first non-sibling edge.
func TestPeerClassHasExactlyOnePeerEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tp := randomHierarchy(rng)
	r := Compute(tp)
	checked := 0
	for _, src := range tp.ASNs() {
		for _, dst := range tp.ASNs() {
			if src == dst || r.Class(src, dst) != ClassPeer {
				continue
			}
			p := r.Path(src, dst)
			peers := 0
			for i := 1; i < len(p); i++ {
				switch tp.RelOf(p[i-1], p[i]) {
				case topology.RelPeer:
					peers++
				case topology.RelProvider:
					t.Fatalf("peer-class path %v climbs to a provider", p)
				}
			}
			if peers != 1 {
				t.Fatalf("peer-class path %v has %d peer edges", p, peers)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no peer-class routes checked")
	}
}

// TestPathLenMatchesClassDistances: PathLen equals the walked path
// length for every reachable pair (consistency of dist bookkeeping).
func TestPathLenMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	tp := randomHierarchy(rng)
	r := Compute(tp)
	asns := tp.ASNs()
	for _, src := range asns[:12] {
		for _, dst := range asns {
			if src == dst {
				continue
			}
			p := r.Path(src, dst)
			if p == nil {
				continue
			}
			if r.PathLen(src, dst) != len(p)-1 {
				t.Fatalf("PathLen(%v,%v)=%d but path %v", src, dst, r.PathLen(src, dst), p)
			}
		}
	}
}

// TestSelfRoute: every AS trivially reaches itself with length 0.
func TestSelfRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	tp := randomHierarchy(rng)
	r := Compute(tp)
	for _, a := range tp.ASNs() {
		if !r.HasRoute(a, a) {
			t.Fatalf("AS %v does not reach itself", a)
		}
		if r.PathLen(a, a) != 0 {
			t.Fatalf("self path length %d", r.PathLen(a, a))
		}
		if p := r.Path(a, a); len(p) != 1 || p[0] != a {
			t.Fatalf("self path %v", p)
		}
	}
}

// TestProviderConePrefersCustomerRoutes: a transit AS must reach every
// AS in its customer cone via a customer-class route (never via a peer
// or provider, which would be economically irrational).
func TestProviderConePrefersCustomerRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	tp := randomHierarchy(rng)
	r := Compute(tp)
	// Build the customer cone by downhill BFS.
	for _, root := range tp.ASNs()[:3] {
		cone := map[topology.ASN]bool{}
		queue := []topology.ASN{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, n := range tp.Neighbors(cur) {
				if tp.RelOf(cur, n) == topology.RelCustomer && !cone[n] {
					cone[n] = true
					queue = append(queue, n)
				}
			}
		}
		for member := range cone {
			if c := r.Class(root, member); c != ClassCustomer {
				t.Fatalf("route %v->%v (in customer cone) has class %v", root, member, c)
			}
		}
	}
}
