package signatures

import (
	"testing"

	"throughputlab/internal/ndt"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
)

var (
	world  = topogen.MustGenerate(topogen.SmallConfig())
	corpus = func() *platform.Corpus {
		cfg := platform.DefaultCollect()
		cfg.Tests = 4000
		cfg.PerPoolClients = 8
		c, err := platform.Collect(world, cfg)
		if err != nil {
			panic(err)
		}
		return c
	}()
)

func TestSelfInflation(t *testing.T) {
	f := Features{MinRTTms: 20, MeanRTTms: 30}
	if got := f.SelfInflation(); got != 0.5 {
		t.Errorf("inflation = %v, want 0.5", got)
	}
	if (Features{MinRTTms: 0, MeanRTTms: 30}).SelfInflation() != 0 {
		t.Error("zero min RTT should yield 0")
	}
}

func TestClassifyRegimes(t *testing.T) {
	cfg := DefaultConfig()
	// Self-induced: big RTT growth.
	v := Classify(Features{MinRTTms: 15, MeanRTTms: 60, LossRate: 1e-4}, cfg)
	if v != SelfInduced {
		t.Errorf("inflated flow classified %v", v)
	}
	// External: flat, high RTT with loss.
	v = Classify(Features{MinRTTms: 150, MeanRTTms: 152, LossRate: 0.02}, cfg)
	if v != ExternalCongestion {
		t.Errorf("flat lossy flow classified %v", v)
	}
	// Fast idle path: flat, no loss → indeterminate.
	v = Classify(Features{MinRTTms: 12, MeanRTTms: 12.5, LossRate: 1e-6}, cfg)
	if v != Indeterminate {
		t.Errorf("idle path classified %v", v)
	}
	// Zero config falls back to defaults.
	v = Classify(Features{MinRTTms: 15, MeanRTTms: 60, LossRate: 1e-4}, Config{})
	if v != SelfInduced {
		t.Error("zero config did not default")
	}
}

func TestVerdictString(t *testing.T) {
	if SelfInduced.String() != "self-induced" || ExternalCongestion.String() != "external-congestion" ||
		Indeterminate.String() != "indeterminate" || Verdict(9).String() == "" {
		t.Error("verdict strings wrong")
	}
}

// TestEndToEndSeparation is the headline claim: on simulated NDT tests
// the two regimes separate with high accuracy using only (minRTT,
// meanRTT, loss) — fields real NDT already logs.
func TestEndToEndSeparation(t *testing.T) {
	var peak []*ndt.Test
	for _, ts := range corpus.Tests {
		h := world.Topo.MustMetro(ts.ClientMetro).LocalHour(ts.StartMinute)
		if h >= 18 && h < 23 {
			peak = append(peak, ts)
		}
	}
	if len(peak) < 300 {
		t.Skipf("only %d peak tests", len(peak))
	}
	c := Evaluate(peak, DefaultConfig())
	if c.DeterminateFrac() < 0.5 {
		t.Errorf("only %.0f%% of tests got a verdict", 100*c.DeterminateFrac())
	}
	if acc := c.Accuracy(); acc < 0.9 {
		t.Errorf("accuracy %.3f < 0.9 (confusion %v)", acc, c.Counts)
	}
	// Both classes must actually occur in the corpus (the congested
	// GTT-AT&T pair supplies the external class).
	ext := c.Counts[ExternalCongestion][ExternalCongestion] + c.Counts[ExternalCongestion][SelfInduced] +
		c.Counts[ExternalCongestion][Indeterminate]
	if ext == 0 {
		t.Error("no externally-congested tests in corpus")
	}
}

// TestExternalFlowsStartHigh checks the mechanism end to end: tests
// crossing a saturated link have flat RTT (mean ≈ min), access-limited
// tests inflate their own RTT.
func TestExternalFlowsStartHigh(t *testing.T) {
	var extInfl, selfInfl []float64
	for _, ts := range corpus.Tests {
		f := Extract(ts)
		if ts.TruthSaturated {
			extInfl = append(extInfl, f.SelfInflation())
		} else if ts.TruthKind.String() == "access-plan" {
			selfInfl = append(selfInfl, f.SelfInflation())
		}
	}
	if len(extInfl) < 20 || len(selfInfl) < 20 {
		t.Skipf("thin classes: ext=%d self=%d", len(extInfl), len(selfInfl))
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(extInfl) >= mean(selfInfl) {
		t.Errorf("external flows inflate (%.2f) as much as self-limited (%.2f)",
			mean(extInfl), mean(selfInfl))
	}
}

func TestEvaluateCounts(t *testing.T) {
	c := Evaluate(corpus.Tests[:100], DefaultConfig())
	if c.Total != 100 {
		t.Errorf("total %d", c.Total)
	}
	sum := 0
	for i := range c.Counts {
		for j := range c.Counts[i] {
			sum += c.Counts[i][j]
		}
	}
	if sum != 100 {
		t.Errorf("confusion sums to %d", sum)
	}
}

func BenchmarkClassify(b *testing.B) {
	cfg := DefaultConfig()
	f := Features{MinRTTms: 30, MeanRTTms: 80, LossRate: 1e-3}
	for i := 0; i < b.N; i++ {
		Classify(f, cfg)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(corpus.Tests, cfg)
	}
}
