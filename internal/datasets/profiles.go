package datasets

import "throughputlab/internal/topology"

// ServiceTier is one residential service plan: a downstream rate and
// its share of the ISP's subscriber base. Plan mixes span an order of
// magnitude within an ISP (§6.1 "service plan variance").
type ServiceTier struct {
	DownMbps float64
	Weight   float64
}

// TransitProfile describes a transit provider / measurement-hosting
// network in the synthetic topology.
type TransitProfile struct {
	Name       string
	ASN        topology.ASN
	SiblingASN topology.ASN // 0 = none
	// MLabMetros lists metros where this network hosts an M-Lab site
	// (empty = hosts none). The paper's M-Lab servers live in transit
	// and hosting networks such as Level3, GTT, Cogent, Tata and XO.
	MLabMetros []string
	// SpeedtestServers is the number of Speedtest-style servers hosted
	// directly in this network.
	SpeedtestServers int
	// HostingOnly marks networks that sell hosting rather than transit;
	// they buy transit and peer with nobody (Voxel-like). Access ISPs
	// reach their M-Lab servers over ≥2 AS hops, which keeps even the
	// best-connected ISPs below 100% one-hop tests in Figure 1.
	HostingOnly bool
}

// Transits returns the transit/hosting roster. Site distribution is
// calibrated so the per-ISP one-hop fractions of Figure 1 emerge from
// which access ISPs peer with which hosts (see AccessProfile).
func Transits() []TransitProfile {
	return []TransitProfile{
		{Name: "Level3", ASN: 3356, SiblingASN: 3549,
			MLabMetros:       []string{"atl", "nyc", "lax", "chi", "dfw", "sea"},
			SpeedtestServers: 14},
		{Name: "GTT", ASN: 3257,
			MLabMetros:       []string{"atl", "nyc", "lax", "chi"},
			SpeedtestServers: 8},
		{Name: "Cogent", ASN: 174,
			MLabMetros:       []string{"wdc", "chi", "sfo", "dfw"},
			SpeedtestServers: 10},
		{Name: "Tata", ASN: 6453,
			MLabMetros:       []string{"nyc", "lax"},
			SpeedtestServers: 4},
		{Name: "XO", ASN: 2828,
			MLabMetros:       []string{"nyc", "chi", "lax"},
			SpeedtestServers: 6},
		{Name: "Voxel", ASN: 29791,
			MLabMetros:       []string{"nyc"},
			SpeedtestServers: 3,
			HostingOnly:      true},
		{Name: "Zayo", ASN: 6461, SpeedtestServers: 6},
		{Name: "Telia", ASN: 1299, SpeedtestServers: 4},
		{Name: "NTT", ASN: 2914, SpeedtestServers: 5},
	}
}

// AccessProfile describes one residential access provider.
type AccessProfile struct {
	Name    string
	OrgName string
	// BackboneASN carries the national backbone; SiblingASNs are
	// regional ASNs under the same organization (clients in some metros
	// number from sibling space, as with Comcast's AS7725/AS22909 in
	// Table 2).
	BackboneASN topology.ASN
	SiblingASNs []topology.ASN
	// SubscribersM is millions of subscribers (Table 1; 0 when the ISP
	// is below the table's one-million cut, like Sonic and RCN).
	SubscribersM float64
	// Metros where the ISP offers service.
	Metros []string
	// TransitAdjacent lists transit names this ISP directly
	// interconnects with and the relationship from the ISP's side
	// (peer or customer); an entry missing means the transit is reached
	// over ≥2 AS hops. This is the Figure 1 knob.
	TransitPeers     []string
	TransitProviders []string
	// AccessPeers lists other access orgs peered directly.
	AccessPeers []string
	// ContentPeerFrac is the fraction of content orgs peered directly
	// (big ISPs peer widely with CDNs; the rest is reached via transit).
	ContentPeerFrac float64
	// CustomerTarget is how many stub/regional ASes buy transit from
	// this ISP (scaled ~4x down from Table 3; see EXPERIMENTS.md).
	CustomerTarget int
	// InterconnectMetros is how many metros realize each transit-peer
	// AS interconnection (router-level diversity, §4.3/Table 2).
	InterconnectMetros int
	// ParallelLinkMean is the mean number of parallel IP links per
	// border-router pair (Cox's Table 2 profile has many).
	ParallelLinkMean float64
	// ArkVPMetros places Ark vantage points (§5.1's 16 VPs).
	ArkVPMetros []string
	// ArkVPLabels are the paper's VP names, index-aligned with
	// ArkVPMetros.
	ArkVPLabels []string
	// FigureLabel is the short label used in Figures 2-4 ("COM", "VZ"…);
	// empty when the ISP has no VP.
	FigureLabel string
	// InFig1 marks the nine ISPs of Figure 1.
	InFig1 bool
	// SpeedtestServers hosted inside this access network.
	SpeedtestServers int
	// Tiers is the service plan mix.
	Tiers []ServiceTier
	// WiFiDegradedFrac is the fraction of homes whose Wi-Fi, not the
	// access link, bottlenecks the test (§6.1).
	WiFiDegradedFrac float64
}

// AccessISPs returns the access-provider roster: the twelve Table 1
// providers plus Sonic and RCN (Ark hosts below the table's cut).
func AccessISPs() []AccessProfile {
	allMetros := func() []string {
		ms := USMetros()
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = m.Code
		}
		return out
	}()
	return []AccessProfile{
		{
			Name: "Comcast", OrgName: "Comcast Cable Communications",
			BackboneASN:        7922,
			SiblingASNs:        []topology.ASN{7725, 22909, 7016, 33491, 13367, 20214, 33657},
			SubscribersM:       23.329,
			Metros:             allMetros,
			TransitPeers:       []string{"Level3", "GTT", "Cogent", "XO", "Zayo", "Telia", "NTT"},
			TransitProviders:   []string{"Tata"},
			AccessPeers:        []string{"AT&T", "Verizon", "Time Warner Cable", "Charter", "CenturyLink", "Cox"},
			ContentPeerFrac:    0.85,
			CustomerTarget:     280,
			InterconnectMetros: 6, ParallelLinkMean: 1.6,
			ArkVPMetros: []string{"bos", "sjc", "atl", "den", "bos"},
			ArkVPLabels: []string{"bed-us", "mry-us", "atl2-us", "wbu2-us", "bos5-us"},
			FigureLabel: "COM", InFig1: true,
			SpeedtestServers: 20,
			Tiers:            []ServiceTier{{25, 0.30}, {50, 0.30}, {105, 0.25}, {150, 0.15}},
			WiFiDegradedFrac: 0.25,
		},
		{
			Name: "AT&T", OrgName: "AT&T Services",
			BackboneASN:        7018,
			SiblingASNs:        []topology.ASN{6389, 7132},
			SubscribersM:       15.778,
			Metros:             allMetros,
			TransitPeers:       []string{"Level3", "GTT", "Cogent", "XO", "NTT"},
			TransitProviders:   []string{"Telia"},
			AccessPeers:        []string{"Comcast", "Verizon", "Time Warner Cable", "CenturyLink"},
			ContentPeerFrac:    0.75,
			CustomerTarget:     530,
			InterconnectMetros: 7, ParallelLinkMean: 1.4,
			ArkVPMetros: []string{"sdg"},
			ArkVPLabels: []string{"san6-us"},
			FigureLabel: "ATT", InFig1: true,
			SpeedtestServers: 16,
			Tiers:            []ServiceTier{{6, 0.30}, {12, 0.30}, {18, 0.20}, {45, 0.20}},
			WiFiDegradedFrac: 0.20,
		},
		{
			Name: "Time Warner Cable", OrgName: "Time Warner Cable Internet",
			BackboneASN:        7843,
			SiblingASNs:        []topology.ASN{20001, 11351, 10796, 11426},
			SubscribersM:       13.313,
			Metros:             []string{"nyc", "lax", "chi", "dfw", "hou", "clt", "stl", "det", "phl", "bos", "sdg"},
			TransitPeers:       []string{"Level3", "GTT", "Cogent", "XO", "Zayo"},
			TransitProviders:   []string{"Telia"},
			AccessPeers:        []string{"Comcast", "AT&T", "Charter"},
			ContentPeerFrac:    0.55,
			CustomerTarget:     140,
			InterconnectMetros: 4, ParallelLinkMean: 1.5,
			ArkVPMetros: []string{"nyc", "clt", "sdg"},
			ArkVPLabels: []string{"ith-us", "lex-us", "san4-us"},
			FigureLabel: "TWC", InFig1: true,
			SpeedtestServers: 12,
			Tiers:            []ServiceTier{{15, 0.30}, {30, 0.35}, {50, 0.20}, {100, 0.15}},
			WiFiDegradedFrac: 0.25,
		},
		{
			Name: "Verizon", OrgName: "Verizon Communications",
			BackboneASN:        701,
			SiblingASNs:        []topology.ASN{6167, 702, 19262},
			SubscribersM:       9.228,
			Metros:             []string{"nyc", "wdc", "bos", "phl", "mia", "dfw", "lax"},
			TransitPeers:       []string{"Level3", "GTT", "Cogent", "XO", "NTT", "Tata"},
			TransitProviders:   []string{"Zayo"},
			AccessPeers:        []string{"Comcast", "AT&T"},
			ContentPeerFrac:    0.35,
			CustomerTarget:     330,
			InterconnectMetros: 5, ParallelLinkMean: 1.5,
			ArkVPMetros: []string{"wdc"},
			ArkVPLabels: []string{"mnz-us"},
			FigureLabel: "VZ", InFig1: true,
			SpeedtestServers: 10,
			Tiers:            []ServiceTier{{25, 0.25}, {50, 0.35}, {75, 0.25}, {150, 0.15}},
			WiFiDegradedFrac: 0.20,
		},
		{
			Name: "CenturyLink", OrgName: "CenturyLink Communications",
			BackboneASN:        209,
			SiblingASNs:        []topology.ASN{22561, 4323},
			SubscribersM:       6.048,
			Metros:             []string{"den", "phx", "sea", "min", "stl", "dfw", "msy", "lax"},
			TransitPeers:       []string{"Level3", "GTT", "Cogent", "XO"},
			TransitProviders:   []string{"Telia"},
			AccessPeers:        []string{"Comcast", "AT&T"},
			ContentPeerFrac:    0.65,
			CustomerTarget:     390,
			InterconnectMetros: 4, ParallelLinkMean: 1.3,
			ArkVPMetros: []string{"phx"},
			ArkVPLabels: []string{"aza-us"},
			FigureLabel: "CENT", InFig1: true,
			SpeedtestServers: 9,
			Tiers:            []ServiceTier{{10, 0.35}, {20, 0.30}, {40, 0.20}, {100, 0.15}},
			WiFiDegradedFrac: 0.22,
		},
		{
			Name: "Charter", OrgName: "Charter Communications",
			BackboneASN:        20115,
			SiblingASNs:        []topology.ASN{11427},
			SubscribersM:       5.572,
			Metros:             []string{"stl", "clt", "det", "min", "lax", "dfw"},
			TransitPeers:       []string{"Level3"},
			TransitProviders:   []string{"Tata", "Telia"},
			AccessPeers:        []string{"Comcast", "Time Warner Cable"},
			ContentPeerFrac:    0.30,
			CustomerTarget:     40,
			InterconnectMetros: 3, ParallelLinkMean: 1.2,
			InFig1:           true,
			SpeedtestServers: 6,
			Tiers:            []ServiceTier{{30, 0.45}, {60, 0.35}, {100, 0.20}},
			WiFiDegradedFrac: 0.28,
		},
		{
			Name: "Cox", OrgName: "Cox Communications",
			BackboneASN:      22773,
			SiblingASNs:      []topology.ASN{22776},
			SubscribersM:     4.3,
			Metros:           []string{"phx", "sdg", "msy", "atl", "wdc", "lax", "dfw", "sjc"},
			TransitPeers:     []string{"Level3", "Tata"},
			TransitProviders: []string{"NTT"},
			AccessPeers:      []string{"Comcast"},
			ContentPeerFrac:  0.45,
			CustomerTarget:   90,
			// Cox's Table 2 signature: few interconnect metros but many
			// parallel IP links per border-router pair.
			InterconnectMetros: 4, ParallelLinkMean: 6.5,
			ArkVPMetros: []string{"msy", "sdg"},
			ArkVPLabels: []string{"msy-us", "san2-us"},
			FigureLabel: "COX", InFig1: true,
			SpeedtestServers: 8,
			Tiers:            []ServiceTier{{15, 0.30}, {50, 0.35}, {100, 0.25}, {150, 0.10}},
			WiFiDegradedFrac: 0.25,
		},
		{
			Name: "Cablevision", OrgName: "Cablevision Systems",
			BackboneASN:        6128,
			SubscribersM:       2.809,
			Metros:             []string{"nyc", "bos", "phl"},
			TransitPeers:       []string{"Level3", "GTT", "Tata"},
			TransitProviders:   []string{"Zayo"},
			ContentPeerFrac:    0.40,
			CustomerTarget:     25,
			InterconnectMetros: 2, ParallelLinkMean: 1.3,
			SpeedtestServers: 4,
			Tiers:            []ServiceTier{{50, 0.5}, {100, 0.35}, {200, 0.15}},
			WiFiDegradedFrac: 0.25,
		},
		{
			Name: "Frontier", OrgName: "Frontier Communications",
			BackboneASN:        5650,
			SiblingASNs:        []topology.ASN{7011},
			SubscribersM:       2.444,
			Metros:             []string{"clt", "det", "min", "sea", "stl"},
			TransitPeers:       []string{"GTT", "Cogent", "XO"},
			TransitProviders:   []string{"Telia"},
			ContentPeerFrac:    0.20,
			CustomerTarget:     29,
			InterconnectMetros: 1, ParallelLinkMean: 1.0,
			ArkVPMetros: []string{"clt"},
			ArkVPLabels: []string{"igx-us"},
			FigureLabel: "FRON", InFig1: true,
			SpeedtestServers: 3,
			Tiers:            []ServiceTier{{6, 0.40}, {12, 0.30}, {25, 0.20}, {45, 0.10}},
			WiFiDegradedFrac: 0.30,
		},
		{
			Name: "Suddenlink", OrgName: "Suddenlink Communications",
			BackboneASN:        19108,
			SubscribersM:       1.467,
			Metros:             []string{"dfw", "hou", "msy", "stl"},
			TransitPeers:       []string{"Level3", "Cogent"},
			TransitProviders:   []string{"Tata"},
			ContentPeerFrac:    0.15,
			CustomerTarget:     12,
			InterconnectMetros: 2, ParallelLinkMean: 1.2,
			SpeedtestServers: 3,
			Tiers:            []ServiceTier{{15, 0.4}, {50, 0.4}, {100, 0.2}},
			WiFiDegradedFrac: 0.28,
		},
		{
			Name: "Windstream", OrgName: "Windstream Communications",
			BackboneASN:        7029,
			SubscribersM:       1.0951,
			Metros:             []string{"clt", "atl", "stl", "msy"},
			TransitPeers:       []string{"Voxel"},
			TransitProviders:   []string{"Zayo", "Telia", "NTT"},
			ContentPeerFrac:    0.05,
			CustomerTarget:     18,
			InterconnectMetros: 1, ParallelLinkMean: 1.0,
			InFig1:           true,
			SpeedtestServers: 2,
			Tiers:            []ServiceTier{{3, 0.35}, {6, 0.30}, {12, 0.25}, {25, 0.10}},
			WiFiDegradedFrac: 0.30,
		},
		{
			Name: "Mediacom", OrgName: "Mediacom Communications",
			BackboneASN:        30036,
			SubscribersM:       1.085,
			Metros:             []string{"min", "stl", "det"},
			TransitPeers:       []string{"Cogent", "XO"},
			TransitProviders:   []string{"Zayo"},
			ContentPeerFrac:    0.10,
			CustomerTarget:     8,
			InterconnectMetros: 1, ParallelLinkMean: 1.1,
			SpeedtestServers: 2,
			Tiers:            []ServiceTier{{15, 0.4}, {50, 0.4}, {100, 0.2}},
			WiFiDegradedFrac: 0.30,
		},
		{
			Name: "Sonic", OrgName: "Sonic Telecom",
			BackboneASN:        46375,
			SubscribersM:       0, // below Table 1's one-million cut
			Metros:             []string{"sfo", "sjc"},
			TransitPeers:       []string{"Level3", "GTT", "Cogent", "XO"},
			TransitProviders:   []string{"Zayo"},
			ContentPeerFrac:    0.25,
			CustomerTarget:     6,
			InterconnectMetros: 1, ParallelLinkMean: 1.0,
			ArkVPMetros:      []string{"sjc"},
			ArkVPLabels:      []string{"wvi-us"},
			FigureLabel:      "SONC",
			SpeedtestServers: 2,
			Tiers:            []ServiceTier{{20, 0.4}, {50, 0.4}, {100, 0.2}},
			WiFiDegradedFrac: 0.20,
		},
		{
			Name: "RCN", OrgName: "RCN Telecom Services",
			BackboneASN:      6079,
			SubscribersM:     0, // below Table 1's one-million cut
			Metros:           []string{"bos", "nyc", "wdc", "chi", "phl"},
			TransitPeers:     []string{"Level3", "GTT", "Cogent"},
			TransitProviders: []string{"Tata"},
			// RCN runs an open peering policy: few customers, many peers
			// (Table 3: 35 customers, 36 peers).
			ContentPeerFrac:    0.95,
			AccessPeers:        []string{"Comcast", "Cablevision"},
			CustomerTarget:     35,
			InterconnectMetros: 2, ParallelLinkMean: 1.1,
			ArkVPMetros:      []string{"bos"},
			ArkVPLabels:      []string{"bed3-us"},
			FigureLabel:      "RCN",
			SpeedtestServers: 3,
			Tiers:            []ServiceTier{{25, 0.4}, {75, 0.4}, {155, 0.2}},
			WiFiDegradedFrac: 0.22,
		},
	}
}

// Table1 returns the paper's Table 1: U.S. broadband access providers
// with more than one million subscribers as of Q3 2015.
func Table1() []struct {
	ISP         string
	Subscribers int
} {
	return []struct {
		ISP         string
		Subscribers int
	}{
		{"Comcast", 23329000},
		{"AT&T", 15778000},
		{"Time Warner Cable", 13313000},
		{"Verizon", 9228000},
		{"CenturyLink", 6048000},
		{"Charter", 5572000},
		{"Cox", 4300000},
		{"Cablevision", 2809000},
		{"Frontier", 2444000},
		{"Suddenlink", 1467000},
		{"Windstream", 1095100},
		{"Mediacom", 1085000},
	}
}
