// Package stream is the concurrency substrate of the pipeline-parallel
// streaming campaign: a bounded sequence-numbered reorder buffer that
// turns out-of-order parallel production back into a deterministic
// ordered stream, and a named-stage fan-out that runs independent
// consumers of that stream on their own goroutines behind bounded
// queues.
//
// Both primitives exist so that parallelism never shows in results:
// producers may finish in any order, but Reorder releases strictly by
// sequence number, and every Pipeline stage observes the identical
// ordered stream. Backpressure is structural — a producer running too
// far ahead of the release cursor blocks in Put, and a producer ahead
// of a slow stage blocks in Send — so memory stays bounded by
// (window + stage queue depth) items no matter how fast the fast side
// runs.
package stream

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"throughputlab/internal/obs"
)

// Reorder is a bounded sequence-numbered reorder buffer. Producers Put
// items tagged with their sequence number (0-based, dense); a single
// consumer calls Next and receives the items in exact sequence order.
// A Put whose sequence number is window or more ahead of the next
// undelivered sequence blocks until the consumer catches up — the
// backpressure bound that keeps at most window items resident.
type Reorder[T any] struct {
	mu   sync.Mutex
	cond *sync.Cond

	window int
	next   int // next sequence Next will release
	buf    map[int]T

	onStall func(seq int)

	closed bool
	err    error
}

// NewReorder returns a reorder buffer releasing from sequence 0 with
// the given window (minimum 1).
func NewReorder[T any](window int) *Reorder[T] {
	if window < 1 {
		window = 1
	}
	r := &Reorder[T]{window: window, buf: make(map[int]T, window)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// OnStall registers a callback invoked (under the buffer's lock, at
// most once per Put) when a Put is about to block outside the release
// window — the telemetry hook that surfaces backpressure stalls as
// progress events. The callback must not call back into the buffer and
// must not block; set it before producers start.
func (r *Reorder[T]) OnStall(fn func(seq int)) {
	r.mu.Lock()
	r.onStall = fn
	r.mu.Unlock()
}

// Put hands over item seq. It blocks while seq is outside the release
// window (seq >= next+window) and returns false once the buffer has
// been failed or closed — the producer's signal to stop working.
// Sequence numbers must be unique; each is delivered exactly once.
func (r *Reorder[T]) Put(seq int, v T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.onStall != nil && seq >= r.next+r.window && r.err == nil && !r.closed {
		r.onStall(seq)
	}
	for seq >= r.next+r.window && r.err == nil && !r.closed {
		r.cond.Wait()
	}
	if r.err != nil || r.closed {
		return false
	}
	r.buf[seq] = v
	if seq == r.next {
		r.cond.Broadcast()
	}
	return true
}

// Next blocks until item `next` is available and returns it, advancing
// the cursor. ok is false once the buffer is closed (or failed) and
// every item put before that has been drained.
func (r *Reorder[T]) Next() (v T, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if item, have := r.buf[r.next]; have {
			delete(r.buf, r.next)
			r.next++
			r.cond.Broadcast()
			return item, true
		}
		if r.closed || r.err != nil {
			return v, false
		}
		r.cond.Wait()
	}
}

// Close marks the stream complete: Next drains what was already put at
// the cursor and then reports done. Producers must have finished.
func (r *Reorder[T]) Close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Fail aborts the stream with err (the first Fail wins): blocked
// producers and the consumer wake immediately and see a dead buffer.
func (r *Reorder[T]) Fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Err returns the failure recorded by Fail, if any.
func (r *Reorder[T]) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Pending reports how many delivered-but-unreleased items are buffered
// (test and telemetry hook; racy by nature).
func (r *Reorder[T]) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// WatchContext fails the buffer with the context's cause when ctx is
// cancelled, waking blocked producers and the consumer — the hook that
// makes a reorder-backed pipeline cancellable without polling. The
// returned stop function releases the watcher; call it once the buffer
// has closed normally.
func (r *Reorder[T]) WatchContext(ctx context.Context) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			r.Fail(context.Cause(ctx))
		case <-done:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Stage is one named consumer of an ordered item stream.
type Stage[T any] struct {
	Name string
	// Fn consumes one item. It runs on the stage's own goroutine,
	// strictly in stream order; an error stops the stage and fails the
	// whole pipeline at the next Send/Close.
	Fn func(T) error
}

// stageState is the runtime of one Stage: its bounded queue, its obs
// handles, and the first error it hit.
type stageState[T any] struct {
	name string
	fn   func(T) error
	ch   chan T

	span  *obs.Span
	depth *obs.Gauge
	items *obs.Counter
	busy  *obs.Counter // cumulative processing time, microseconds
	bus   *obs.Bus     // progress events (nil when no bus is attached)

	err error
}

// stageEventEvery is the per-stage progress event cadence: one
// "pipeline.stage" event per this many processed items (plus one final
// event when the stage drains), so a million-item stream does not
// flood the bounded bus and crowd out chunk/fault events.
const stageEventEvery = 100

// Pipeline broadcasts an ordered item stream to every stage, each on
// its own goroutine behind a bounded queue, so consumers overlap with
// production and with each other; wall time approaches the slowest
// stage instead of the sum of stages. Send blocks when a stage's queue
// is full — the same structural backpressure as Reorder — so resident
// items are bounded by depth per stage.
//
// Determinism: every stage receives the identical stream in the
// identical order; only the interleaving across stages varies, which
// is why stages must not share mutable state unless independently
// synchronized.
type Pipeline[T any] struct {
	stages []*stageState[T]
	wg     sync.WaitGroup
	span   *obs.Span

	mu     sync.Mutex
	failed error
	sent   int
}

// NewPipeline starts one goroutine per stage, each consuming from a
// bounded queue of the given depth (minimum 1). When reg is non-nil
// the pipeline records, per stage: a child span under "pipeline.<name>"
// covering the stage's lifetime, a queue-depth gauge
// pipeline.<name>.<stage>.depth (with .depth_max high-water mark), an
// item counter, and cumulative busy time in microseconds — the numbers
// that show where the pipeline stalls.
func NewPipeline[T any](name string, depth int, reg *obs.Registry, stages ...Stage[T]) *Pipeline[T] {
	if depth < 1 {
		depth = 1
	}
	p := &Pipeline[T]{span: reg.Span("pipeline." + name)}
	for _, st := range stages {
		ss := &stageState[T]{name: st.Name, fn: st.Fn, ch: make(chan T, depth), bus: reg.Events()}
		if reg != nil {
			prefix := fmt.Sprintf("pipeline.%s.%s.", name, st.Name)
			ss.span = p.span.Child(st.Name)
			ss.depth = reg.Gauge(prefix + "depth")
			ss.items = reg.Counter(prefix + "items")
			ss.busy = reg.Counter(prefix + "busy_us")
		}
		p.stages = append(p.stages, ss)
		p.wg.Add(1)
		go p.run(ss, reg, name)
	}
	return p
}

// run drains one stage's queue until it closes or the stage errors.
func (p *Pipeline[T]) run(ss *stageState[T], reg *obs.Registry, name string) {
	defer p.wg.Done()
	defer ss.span.End()
	// Label the stage goroutine so profiles scraped off the telemetry
	// endpoint attribute CPU to pipeline stages by name.
	defer pprof.SetGoroutineLabels(context.Background())
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("tputlab.pipeline", name, "tputlab.stage", ss.name)))
	var depthMax, processed int64
	defer func() {
		if processed > 0 {
			ss.bus.Publish("pipeline.stage", name+"."+ss.name, -1, processed)
		}
	}()
	for v := range ss.ch {
		if ss.depth != nil {
			d := int64(len(ss.ch)) + 1
			ss.depth.Set(d)
			if d > depthMax {
				depthMax = d
				reg.Gauge(fmt.Sprintf("pipeline.%s.%s.depth_max", name, ss.name)).Set(d)
			}
		}
		if ss.err != nil {
			continue // already failed: drain so Send never wedges
		}
		start := time.Now()
		err := ss.fn(v)
		if ss.busy != nil {
			ss.busy.Add(uint64(time.Since(start).Microseconds()))
			ss.items.Inc()
			ss.depth.Set(int64(len(ss.ch)))
		}
		processed++
		if processed%stageEventEvery == 0 {
			ss.bus.Publish("pipeline.stage", name+"."+ss.name, -1, processed)
		}
		if err != nil {
			ss.err = fmt.Errorf("stream: stage %s: %w", ss.name, err)
			p.mu.Lock()
			if p.failed == nil {
				p.failed = ss.err
			}
			p.mu.Unlock()
		}
	}
}

// Send broadcasts one item to every stage, blocking on full queues. It
// returns the first stage error once one has been observed; items sent
// after a failure are drained, not processed.
func (p *Pipeline[T]) Send(v T) error {
	p.mu.Lock()
	err := p.failed
	p.sent++
	p.mu.Unlock()
	if err != nil {
		return err
	}
	for _, ss := range p.stages {
		ss.ch <- v
	}
	return nil
}

// SendCtx is Send that also gives up when ctx is cancelled, returning
// the context's cause — the cooperative-cancellation variant used by
// streamed report passes, where a blocked stage queue must not outlive
// a SIGINT. Items already queued keep draining through the stages.
func (p *Pipeline[T]) SendCtx(ctx context.Context, v T) error {
	p.mu.Lock()
	err := p.failed
	p.sent++
	p.mu.Unlock()
	if err != nil {
		return err
	}
	for _, ss := range p.stages {
		select {
		case ss.ch <- v:
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	}
	return nil
}

// Close ends the stream: stage queues are closed, every stage drains,
// and the first stage error (if any) is returned.
func (p *Pipeline[T]) Close() error {
	for _, ss := range p.stages {
		close(ss.ch)
	}
	p.wg.Wait()
	p.span.End()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed
}

// Sent reports how many items have been broadcast.
func (p *Pipeline[T]) Sent() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}
