package ndt

import (
	"math/rand"
	"testing"

	"throughputlab/internal/topogen"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

func TestRunProducesPlausibleRecord(t *testing.T) {
	r := NewRunner(world)
	client, ok := world.NewClient("Comcast", "nyc")
	if !ok {
		t.Fatal("no client")
	}
	server := world.MLabServers()[0]
	rng := rand.New(rand.NewSource(1))
	test, err := r.Run(7, client, "Comcast", 50, 0, server, 300, 99, rng)
	if err != nil {
		t.Fatal(err)
	}
	if test.ID != 7 || test.ClientISP != "Comcast" || test.ClientAddr != client.Addr {
		t.Errorf("identity fields wrong: %+v", test)
	}
	if test.DownMbps <= 0 || test.DownMbps > 50 {
		t.Errorf("down %v outside (0, tier]", test.DownMbps)
	}
	if test.UpMbps <= 0 || test.UpMbps > 5.01 {
		t.Errorf("up %v outside (0, tier/10]", test.UpMbps)
	}
	if test.RTTms <= 0 {
		t.Error("non-positive RTT")
	}
	if test.RetransRate < 0 || test.RetransRate > 1 {
		t.Errorf("retrans rate %v", test.RetransRate)
	}
	if len(test.TruthASPath) < 2 {
		t.Error("AS path missing")
	}
	if len(test.TruthInterLinks) == 0 {
		t.Error("server->client path should cross interdomain links")
	}
	if test.ServerSite == "" || test.ServerNet == "" {
		t.Error("server labels missing")
	}
}

func TestWiFiCapRespected(t *testing.T) {
	r := NewRunner(world)
	r.NoiseSigma = 0
	client, _ := world.NewClient("Comcast", "nyc")
	server := world.MLabServers()[0]
	test, err := r.Run(1, client, "Comcast", 105, 20, server, 600, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if test.DownMbps > 20.01 {
		t.Errorf("wifi cap 20 exceeded: %v", test.DownMbps)
	}
	if test.TruthKind.String() != "home-wifi" {
		t.Errorf("truth kind = %v, want home-wifi", test.TruthKind)
	}
}

func TestSiteOf(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ndt-atl01.gtt-2", "atl01.gtt"},
		{"ndt-nyc01.level3-1", "nyc01.level3"},
		{"odd", "odd"},
	}
	for _, c := range cases {
		if got := siteOf(c.in); got != c.want {
			t.Errorf("siteOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWeb100ConsistentWithHeadlineNumbers(t *testing.T) {
	r := NewRunner(world)
	r.NoiseSigma = 0
	client, _ := world.NewClient("Comcast", "chi")
	server := world.MLabServers()[0]
	test, err := r.Run(3, client, "Comcast", 50, 0, server, 300, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := test.Web100
	if d := w.ThroughputMbps() - test.DownMbps; d > 0.5 || d < -0.5 {
		t.Errorf("web100 throughput %.2f vs test %.2f", w.ThroughputMbps(), test.DownMbps)
	}
	if w.MinRTTms != test.RTTMinMs || w.SmoothedRTTms != test.RTTms {
		t.Error("web100 RTTs disagree with test record")
	}
	if rr := w.RetransRate(); rr > test.RetransRate*2+1e-3 {
		t.Errorf("web100 retrans %.5f vs test %.5f", rr, test.RetransRate)
	}
}

func TestTestTruncate(t *testing.T) {
	w := topogen.MustGenerate(topogen.SmallConfig())
	r := NewRunner(w)
	h, ok := w.NewClient("Comcast", "nyc")
	if !ok {
		t.Fatal("no client")
	}
	srv := w.MLabServers()[0]
	test, err := r.Run(1, h, "Comcast", 50, 0, srv, 600, 7, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	full := test.DownMbps
	test.Truncate(0.5)
	if !test.Truncated {
		t.Error("Truncate did not mark the record")
	}
	if test.DownMbps >= full {
		t.Errorf("truncated headline %v not below full %v", test.DownMbps, full)
	}
	if test.Web100.Complete() {
		t.Error("truncated test still carries a complete web100 snapshot")
	}
}
