package geo

import "testing"

func matrixMetros() []Metro {
	return []Metro{
		{Code: "atl", Name: "Atlanta", Lat: 33.75, Lon: -84.39, UTCOffset: -5},
		{Code: "nyc", Name: "New York", Lat: 40.71, Lon: -74.01, UTCOffset: -5},
		{Code: "lax", Name: "Los Angeles", Lat: 34.05, Lon: -118.24, UTCOffset: -8},
		{Code: "lhr", Name: "London", Lat: 51.47, Lon: -0.45, UTCOffset: 0},
	}
}

// TestDelayMatrixMatchesPropagationDelay pins the byte-identity
// contract: every matrix entry is the exact float64 PropagationDelayMs
// returns for that pair, in both orders.
func TestDelayMatrixMatchesPropagationDelay(t *testing.T) {
	metros := matrixMetros()
	m := NewDelayMatrix(metros)
	if m.Len() != len(metros) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(metros))
	}
	for i, a := range metros {
		ai, ok := m.Index(a.Code)
		if !ok || ai != i {
			t.Fatalf("Index(%q) = %d,%v, want %d,true", a.Code, ai, ok, i)
		}
		for j, b := range metros {
			want := PropagationDelayMs(a, b)
			if got := m.At(i, j); got != want {
				t.Errorf("At(%s,%s) = %v, want %v", a.Code, b.Code, got, want)
			}
		}
	}
	if _, ok := m.Index("zzz"); ok {
		t.Error("Index of unknown code reported ok")
	}
}

func TestDelayMatrixLocalConstant(t *testing.T) {
	metros := matrixMetros()
	m := NewDelayMatrix(metros)
	for i := range metros {
		if got := m.At(i, i); got != 0.2 {
			t.Errorf("same-metro delay = %v, want 0.2", got)
		}
	}
}
