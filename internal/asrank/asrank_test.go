package asrank

import (
	"testing"

	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

// collectorFeeds emulates route collectors: full tables as seen from a
// sample of vantage ASes (this is what CAIDA's AS-rank consumes).
func collectorFeeds(nVantage int) [][]topology.ASN {
	asns := world.Topo.ASNs()
	var paths [][]topology.ASN
	step := len(asns) / nVantage
	if step == 0 {
		step = 1
	}
	for vi := 0; vi < len(asns); vi += step {
		vantage := asns[vi]
		for _, origin := range asns {
			if origin == vantage {
				continue
			}
			if p := world.Routes.Path(vantage, origin); len(p) >= 2 {
				paths = append(paths, p)
			}
		}
	}
	return paths
}

func TestInferAccuracy(t *testing.T) {
	res := Infer(collectorFeeds(25), DefaultConfig())
	total, correct := 0, 0
	wrongByTruth := map[topology.Rel]int{}
	for _, e := range res.Edges() {
		truth := world.Topo.RelOf(e.A, e.B)
		if truth == topology.RelNone {
			t.Fatalf("inferred edge %d-%d not adjacent in ground truth", e.A, e.B)
		}
		total++
		if e.Rel == truth {
			correct++
		} else {
			wrongByTruth[truth]++
		}
	}
	if total < 200 {
		t.Fatalf("only %d edges classified", total)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Errorf("relationship accuracy %.3f < 0.8 (errors by truth: %v)", acc, wrongByTruth)
	}
}

func TestCustomerProviderOrientation(t *testing.T) {
	res := Infer(collectorFeeds(25), DefaultConfig())
	// Check orientation on known ground truth: stubs buy from transits.
	checked := 0
	for _, e := range res.Edges() {
		truth := world.Topo.RelOf(e.A, e.B)
		if truth != topology.RelCustomer && truth != topology.RelProvider {
			continue
		}
		if e.Rel != topology.RelCustomer && e.Rel != topology.RelProvider {
			continue
		}
		checked++
		// Rel must be consistent when queried from both sides.
		if res.Rel(e.A, e.B) != res.Rel(e.B, e.A).Invert() {
			t.Fatalf("asymmetric inference for %d-%d", e.A, e.B)
		}
	}
	if checked == 0 {
		t.Fatal("no provider-customer edges checked")
	}
}

func TestTransitMeshInferredAsPeers(t *testing.T) {
	res := Infer(collectorFeeds(25), DefaultConfig())
	// The transit full mesh: most pairwise relationships should come
	// out peer (their links sit at path peaks between high-degree
	// ASes).
	transits := []topology.ASN{3356, 3257, 174, 6453, 2828, 6461, 1299, 2914}
	peer, other := 0, 0
	for i, a := range transits {
		for _, b := range transits[i+1:] {
			switch res.Rel(a, b) {
			case topology.RelPeer:
				peer++
			case topology.RelNone:
				// not adjacent or never observed
			default:
				other++
			}
		}
	}
	if peer == 0 {
		t.Fatal("no transit-transit peerings inferred")
	}
	if frac := float64(peer) / float64(peer+other); frac < 0.7 {
		t.Errorf("only %.0f%% of observed transit-mesh edges inferred peer", 100*frac)
	}
}

func TestUnknownPairIsNone(t *testing.T) {
	res := Infer(collectorFeeds(10), DefaultConfig())
	if res.Rel(1, 2) != topology.RelNone {
		t.Error("unobserved pair should be RelNone")
	}
}

func TestDegreeOrdering(t *testing.T) {
	res := Infer(collectorFeeds(25), DefaultConfig())
	// Transits out-degree any stub.
	stubDeg := res.Degree[50001]
	if res.Degree[3356] <= stubDeg {
		t.Errorf("Level3 degree %d not above stub degree %d", res.Degree[3356], stubDeg)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	paths := [][]topology.ASN{{1, 2, 3}, {3, 2, 1}, {4, 2, 3}}
	res := Infer(paths, Config{})
	if len(res.Edges()) == 0 {
		t.Error("zero config should default and classify something")
	}
}

func TestEmptyAndTrivialPaths(t *testing.T) {
	res := Infer([][]topology.ASN{{}, {7}, nil}, DefaultConfig())
	if len(res.Edges()) != 0 {
		t.Error("no edges should be inferred from trivial paths")
	}
}

func BenchmarkInfer(b *testing.B) {
	feeds := collectorFeeds(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Infer(feeds, DefaultConfig())
	}
}
