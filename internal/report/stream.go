// Streaming report assembly: the same §7 checklist as Build, fed chunk
// by chunk so a large or persisted corpus never has to be resident all
// at once. The reduction is two-pass — operator inference must see
// every trace before any path can be labeled — and every per-group
// aggregate is either accumulated in corpus order (the float-summation
// sensitive series and bias bins) or order-independent (integer
// counters, link sets), so the rendered report is byte-identical to the
// batch path.
package report

import (
	"sort"

	"throughputlab/internal/core"
	"throughputlab/internal/datasets"
	"throughputlab/internal/mapit"
	"throughputlab/internal/ndt"
	"throughputlab/internal/obs"
	"throughputlab/internal/platform"
	"throughputlab/internal/signatures"
	"throughputlab/internal/traceroute"
)

// MatchWindowMin and MatchMode are the association parameters the
// pipeline uses everywhere (experiments.NewEnv and the streaming
// builder must agree, or stream and batch reports diverge).
const (
	MatchWindowMin = 10
	MatchModeUsed  = core.WindowAfter
)

// MetroHourOf returns a world-free client-local-hour function backed by
// the static metro table. Persisted corpora carry metro codes, not
// geometry, and the generator sources its metros from the same table,
// so this agrees exactly with experiments.Env.HourOf.
func MetroHourOf() func(*ndt.Test) float64 {
	offsets := map[string]int{}
	for _, m := range datasets.USMetros() {
		offsets[m.Code] = m.UTCOffset
	}
	return func(t *ndt.Test) float64 {
		// Inline geo.Metro.LocalHour for the known code set; unknown
		// metros fall back to UTC rather than panicking on foreign data.
		h := float64(t.StartMinute)/60 + float64(offsets[t.ClientMetro])
		h -= float64(int(h/24) * 24)
		if h < 0 {
			h += 24
		}
		return h
	}
}

// aggGroup is the per-test half of the group accumulator: everything
// derived from the test stream alone, in publication order (the float
// summation inside series is order-sensitive). Owned by the
// aggregation stage.
type aggGroup struct {
	tests     int
	series    core.Series
	perClient map[uint32]int
	det, ext  int
}

// pairGroup is the association half: counters and sets fed by the
// matcher's finalized pairs, all order-independent. Owned by the
// matching stage, so aggregation and matching can run on separate
// goroutines without sharing a map.
type pairGroup struct {
	matched, oneHop, pathKnown int
	linkSet                    map[uint32]bool
}

// StreamBuilder assembles a Report incrementally. Protocol:
//
//	b := NewStreamBuilder(cfg, hourOf, mapitOpts)
//	for each chunk { b.AddTraces(chunk.Traces) }     // pass 1
//	b.FinishInference()
//	for each chunk { b.AddChunk(tests, traces, wm) } // pass 2, same order
//	rep := b.Finish(completeness)
//
// Pass 2 replays the same chunks (from a persisted stream, or by
// re-collecting the deterministic campaign). Peak memory is one chunk
// plus the matcher's watermark buffer plus per-group aggregates.
//
// Pipelined assembly: pass 2 splits into two independent consumers of
// the same chunk stream — AddTests (per-test aggregation) and
// AddMatch (trace association) — with disjoint state, so a
// stream.Pipeline can run them on separate goroutines. Each must see
// the chunks in publication order; the interleaving BETWEEN them is
// free. AddChunk is the serial composition of the two, and Finish
// (called after both consumers drain) merges their group halves, so
// the rendered report is byte-identical either way.
type StreamBuilder struct {
	cfg    Config
	hourOf func(*ndt.Test) float64
	reg    *obs.Registry

	mb  *mapit.Builder
	inf *mapit.Inference

	matcher *core.StreamMatcher
	agg     map[gkey]*aggGroup
	pairs   map[gkey]*pairGroup
}

type gkey struct{ net, metro, isp string }

// NewStreamBuilder starts a streaming report assembly.
func NewStreamBuilder(cfg Config, hourOf func(*ndt.Test) float64, opts mapit.Opts) *StreamBuilder {
	if cfg.MinTests == 0 {
		cfg = DefaultConfig()
	}
	return &StreamBuilder{
		cfg:    cfg,
		hourOf: hourOf,
		reg:    opts.Obs,
		mb:     mapit.NewBuilder(opts),
		agg:    map[gkey]*aggGroup{},
		pairs:  map[gkey]*pairGroup{},
	}
}

// AddTraces folds one chunk of traces into the operator inference
// (pass 1).
func (b *StreamBuilder) AddTraces(traces []*traceroute.Trace) {
	if b.inf != nil {
		panic("report: AddTraces after FinishInference")
	}
	b.mb.Add(traces)
}

// FinishInference seals MAP-IT and arms the matcher; it returns the
// inference for callers that also need border analysis
// (bdrmap.NewAnalyzerFromInference).
func (b *StreamBuilder) FinishInference() *mapit.Inference {
	if b.inf != nil {
		return b.inf
	}
	sp := b.reg.Span("mapit")
	b.inf = b.mb.Finish()
	sp.End()
	b.mb = nil
	b.matcher = core.NewStreamMatcher(MatchWindowMin, MatchModeUsed)
	b.matcher.OnPair = b.onPair
	b.reg.Events().Publish("report.pass", "inference", -1, int64(len(b.inf.Links)))
	return b.inf
}

// AddChunk folds one chunk of the corpus (pass 2): the serial
// composition of the aggregation and matching stages. watermark is the
// chunk's scheduling watermark (platform.Chunk.Watermark /
// export.StreamChunk.Watermark).
func (b *StreamBuilder) AddChunk(tests []*ndt.Test, traces []*traceroute.Trace, watermark int) {
	b.AddTests(tests)
	b.AddMatch(tests, traces, watermark)
}

// AddTests is the pass-2 aggregation stage: per-test group statistics,
// folded in publication order so the float summation inside each
// group's series matches the batch path exactly. It touches only the
// aggregation half of the group state and may run concurrently with
// AddMatch on another goroutine.
func (b *StreamBuilder) AddTests(tests []*ndt.Test) {
	if b.inf == nil {
		panic("report: AddTests before FinishInference")
	}
	for _, t := range tests {
		k := gkey{t.ServerNet, t.ServerMetro, t.ClientISP}
		g := b.agg[k]
		if g == nil {
			g = &aggGroup{perClient: map[uint32]int{}}
			b.agg[k] = g
		}
		g.tests++
		h := b.hourOf(t)
		g.series.Add(h, t)
		g.perClient[uint32(t.ClientAddr)]++
		if h >= 19 && h < 23 {
			switch signatures.Classify(signatures.Extract(t), b.cfg.Signature) {
			case signatures.ExternalCongestion:
				g.det++
				g.ext++
			case signatures.SelfInduced:
				g.det++
			}
		}
	}
}

// AddMatch is the pass-2 association stage: it feeds the watermark
// matcher and accumulates pair statistics. It touches only the pair
// half of the group state and may run concurrently with AddTests on
// another goroutine.
func (b *StreamBuilder) AddMatch(tests []*ndt.Test, traces []*traceroute.Trace, watermark int) {
	if b.inf == nil {
		panic("report: AddMatch before FinishInference")
	}
	b.matcher.Add(tests, traces, watermark)
	if b.reg != nil {
		pt, pr := b.matcher.InFlight()
		b.reg.Gauge("report.stream.pending_tests").Set(int64(pt))
		b.reg.Gauge("report.stream.buffered_traces").Set(int64(pr))
	}
}

// onPair receives finalized associations from the matcher. Everything
// it touches is order-independent (counters and set inserts), so the
// matcher's finalization order — which differs from group order — never
// shows in the report.
func (b *StreamBuilder) onPair(t *ndt.Test, tr *traceroute.Trace) {
	if tr == nil {
		return
	}
	k := gkey{t.ServerNet, t.ServerMetro, t.ClientISP}
	g := b.pairs[k]
	if g == nil {
		g = &pairGroup{linkSet: map[uint32]bool{}}
		b.pairs[k] = g
	}
	g.matched++
	p := b.inf.ASPathOf(tr)
	if len(p) >= 2 {
		g.pathKnown++
		if len(p) == 2 {
			g.oneHop++
		}
	}
	if links := b.inf.LinksOf(tr); len(links) > 0 {
		g.linkSet[uint32(links[0].Far)] = true
	}
}

// Finish drains the matcher, merges the aggregation and pair halves of
// every group, grades them, and returns the report. With pipelined
// assembly it must run only after both pass-2 stages have drained.
func (b *StreamBuilder) Finish(completeness platform.Completeness) *Report {
	if b.inf == nil {
		b.FinishInference()
	}
	m := b.matcher.Finish()
	if b.reg != nil {
		b.reg.Gauge("match.pairs").Set(int64(m.Matched()))
		b.reg.Gauge("match.degraded").Set(int64(m.Degraded))
	}

	// Every pair comes from a finalized test, so the aggregation map
	// covers every key the pair map can hold; iterating agg loses
	// nothing.
	keys := make([]gkey, 0, len(b.agg))
	for k, g := range b.agg {
		if g.tests >= b.cfg.MinTests {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.net != c.net {
			return a.net < c.net
		}
		if a.metro != c.metro {
			return a.metro < c.metro
		}
		return a.isp < c.isp
	})

	rep := &Report{Completeness: completeness, MatchedDegraded: m.Degraded}
	var none pairGroup
	for _, k := range keys {
		g := b.agg[k]
		p := b.pairs[k]
		if p == nil {
			p = &none
		}
		f := Finding{
			ServerNet: k.net, ServerMetro: k.metro, ClientISP: k.isp,
			Tests:       g.tests,
			MatchedFrac: frac(p.matched, g.tests),
			OneHopFrac:  frac(p.oneHop, p.pathKnown),
			IPLinks:     len(p.linkSet),
		}
		f.Detector = core.Detect(&g.series, b.cfg.Detector)
		f.Bias = core.BiasFromBins(&g.series.Throughput, g.perClient, b.cfg.Detector.MinSamples)
		f.ExternalSigFrac = frac(g.ext, g.det)
		grade(&f, b.cfg)
		switch f.Grade {
		case CongestedHighConfidence, CongestedLowConfidence:
			rep.Congested++
		case Ambiguous:
			rep.Ambiguous++
		}
		rep.Findings = append(rep.Findings, f)
	}
	b.reg.Events().Publish("report.pass", "final", -1, int64(len(rep.Findings)))
	return rep
}
