package obs

import "testing"

// Benchmarks pinning the two contracts the rest of the pipeline builds
// on: the disabled (nil-handle) path is a branch — 0 allocs/op,
// sub-nanosecond — and the enabled path is one atomic op with 0
// allocs/op. BenchmarkCounterAddDisabled is the regression guard the
// ISSUE requires: the observability layer can never silently put
// allocations back on the PR-2 hot paths.

func BenchmarkCounterAddDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := NewRegistry().Counter("enabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() == 0 {
		b.Fatal("counter not incremented")
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("disabled", Bounds(1, 2, 4, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 15))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("enabled", Bounds(1, 2, 4, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 15))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Span("phase")
		sp.End()
	}
}
