package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// The two sinks. Snapshot flattens a registry into a Dump — a plain
// data struct that marshals to the JSON/expvar-style document consumed
// by `tputlab run -metrics-json`, `tputlab bench`, and the CI metrics
// job — and Summary renders the same information for humans on stderr.

// Dump is a point-in-time export of a registry.
type Dump struct {
	Counters   map[string]uint64        `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]HistogramDump `json:"histograms"`
	Spans      []SpanDump               `json:"spans"`
	// Series carries the simulated-clock time series when a Sampler is
	// attached (timeseries.go); absent otherwise.
	Series map[string]SeriesDump `json:"series,omitempty"`
	// Events carries the progress bus counters when a Bus is attached
	// (events.go); absent otherwise.
	Events *EventStats `json:"events,omitempty"`
}

// HistogramDump is one exported histogram. P50/P90/P99 are
// bucket-interpolated quantile estimates (see Histogram.Quantile).
type HistogramDump struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	P50     float64      `json:"p50"`
	P90     float64      `json:"p90"`
	P99     float64      `json:"p99"`
	Buckets []BucketDump `json:"buckets"`
}

// BucketDump is one histogram bucket; the overflow bucket has
// Upper = +Inf, exported as the string "+Inf".
type BucketDump struct {
	Upper float64 `json:"-"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders the bucket with a JSON-safe upper bound.
func (b BucketDump) MarshalJSON() ([]byte, error) {
	upper := "+Inf"
	if !math.IsInf(b.Upper, 1) {
		upper = fmt.Sprintf("%g", b.Upper)
	}
	return json.Marshal(struct {
		Upper string `json:"le"`
		Count uint64 `json:"count"`
	}{upper, b.Count})
}

// SpanDump is one exported span subtree.
type SpanDump struct {
	Name     string     `json:"name"`
	Millis   float64    `json:"ms"`
	Children []SpanDump `json:"children,omitempty"`
}

// Snapshot exports the registry's current state. On a nil registry it
// returns an empty (but non-nil) dump, so callers can marshal it
// unconditionally.
func (r *Registry) Snapshot() *Dump {
	d := &Dump{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramDump{},
	}
	if r == nil {
		return d
	}
	r.mu.Lock()
	for name, c := range r.counters {
		d.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		d.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hd := HistogramDump{Count: h.Count(), Sum: h.Sum()}
		counts := make([]uint64, len(h.counts))
		for i := range h.counts {
			upper := math.Inf(1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			counts[i] = h.counts[i].Load()
			hd.Buckets = append(hd.Buckets, BucketDump{Upper: upper, Count: counts[i]})
		}
		hd.P50 = quantile(h.bounds, counts, 0.50)
		hd.P90 = quantile(h.bounds, counts, 0.90)
		hd.P99 = quantile(h.bounds, counts, 0.99)
		d.Histograms[name] = hd
	}
	r.mu.Unlock()

	if s := r.TimeSeries(); s != nil {
		d.Series = s.DumpSeries()
	}
	if b := r.Events(); b != nil {
		st := b.Stats()
		d.Events = &st
	}

	r.spanMu.Lock()
	roots := append([]*Span(nil), r.roots...)
	r.spanMu.Unlock()
	for _, s := range roots {
		d.Spans = append(d.Spans, dumpSpan(s))
	}
	return d
}

func dumpSpan(s *Span) SpanDump {
	sd := SpanDump{Name: s.Name(), Millis: float64(s.Duration().Microseconds()) / 1000}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		sd.Children = append(sd.Children, dumpSpan(c))
	}
	return sd
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Summary renders the phase tree and all metrics as human-readable
// text, names sorted, suitable for stderr. On a nil registry it returns
// "".
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	d := r.Snapshot()
	var sb strings.Builder
	if len(d.Spans) > 0 {
		sb.WriteString("phases:\n")
		for _, s := range d.Spans {
			writeSpanTree(&sb, s, 1)
		}
	}
	writeSection(&sb, "counters", d.Counters, func(v uint64) string {
		return fmt.Sprintf("%d", v)
	})
	writeSection(&sb, "gauges", d.Gauges, func(v int64) string {
		return fmt.Sprintf("%d", v)
	})
	if len(d.Histograms) > 0 {
		sb.WriteString("histograms:\n")
		for _, name := range sortedKeys(d.Histograms) {
			h := d.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&sb, "  %-44s count=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f",
				name, h.Count, mean, h.P50, h.P90, h.P99)
			for _, b := range h.Buckets {
				if b.Count == 0 {
					continue
				}
				upper := "+Inf"
				if !math.IsInf(b.Upper, 1) {
					upper = fmt.Sprintf("%g", b.Upper)
				}
				fmt.Fprintf(&sb, " ≤%s:%d", upper, b.Count)
			}
			sb.WriteByte('\n')
		}
	}
	if len(d.Series) > 0 {
		fmt.Fprintf(&sb, "series: %d metrics sampled on the simulated clock\n", len(d.Series))
	}
	if d.Events != nil {
		fmt.Fprintf(&sb, "events: published=%d dropped=%d\n", d.Events.Published, d.Events.Dropped)
	}
	return sb.String()
}

func writeSpanTree(sb *strings.Builder, s SpanDump, depth int) {
	fmt.Fprintf(sb, "%s%-*s %9.1f ms\n",
		strings.Repeat("  ", depth), 46-2*depth, s.Name, s.Millis)
	for _, c := range s.Children {
		writeSpanTree(sb, c, depth+1)
	}
}

func writeSection[V any](sb *strings.Builder, title string, m map[string]V, format func(V) string) {
	if len(m) == 0 {
		return
	}
	sb.WriteString(title + ":\n")
	for _, name := range sortedKeys(m) {
		fmt.Fprintf(sb, "  %-44s %s\n", name, format(m[name]))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
