package mapit

import (
	"testing"
)

// inferenceEqual compares two inferences field by field.
func inferenceEqual(t *testing.T, label string, a, b *Inference) {
	t.Helper()
	if len(a.Operator) != len(b.Operator) {
		t.Fatalf("%s: operator map sizes %d vs %d", label, len(a.Operator), len(b.Operator))
	}
	for addr, asn := range a.Operator {
		if b.Operator[addr] != asn {
			t.Fatalf("%s: operator of %v differs: %v vs %v", label, addr, asn, b.Operator[addr])
		}
	}
	if len(a.Links) != len(b.Links) {
		t.Fatalf("%s: link counts %d vs %d", label, len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("%s: link %d differs: %+v vs %+v", label, i, a.Links[i], b.Links[i])
		}
	}
}

// TestBuilderChunkedMatchesRun pins the incremental contract: feeding
// the corpus through Add in chunks of any size — and at any worker
// count — produces the identical inference to one batch Run.
func TestBuilderChunkedMatchesRun(t *testing.T) {
	traces := cleanCorpus(t, 400)
	want := Run(traces, worldOpts())
	for _, chunk := range []int{1, 7, 100, 1000} {
		for _, workers := range []int{1, 4} {
			opts := worldOpts()
			opts.Workers = workers
			b := NewBuilder(opts)
			for lo := 0; lo < len(traces); lo += chunk {
				hi := lo + chunk
				if hi > len(traces) {
					hi = len(traces)
				}
				b.Add(traces[lo:hi])
			}
			got := b.Finish()
			inferenceEqual(t, "chunked", want, got)
		}
	}
}

// TestBuilderEmpty finishes cleanly with nothing added.
func TestBuilderEmpty(t *testing.T) {
	inf := NewBuilder(worldOpts()).Finish()
	if len(inf.Operator) != 0 || len(inf.Links) != 0 {
		t.Fatalf("empty builder inferred %d operators, %d links", len(inf.Operator), len(inf.Links))
	}
}
