// Package throughputlab reproduces "Challenges in Inferring Internet
// Congestion Using Throughput Measurements" (Sundaresan et al., IMC
// 2017) as a runnable system: a synthetic Internet substrate (topology
// generation, Gao–Rexford BGP, router-level forwarding, a fluid
// TCP/congestion model), the measurement platforms the paper studies
// (M-Lab NDT with Paris traceroute collection, Speedtest-style server
// fleets, Ark vantage points), reimplementations of the inference
// tools it relies on (MAP-IT, bdrmap, binary network tomography), and
// the congestion-inference pipeline with the paper's challenge
// diagnostics.
//
// Start with cmd/tputlab ("tputlab list"), the runnable examples under
// examples/, and DESIGN.md / EXPERIMENTS.md for the experiment index
// and reproduction results. The root-level benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation.
package throughputlab
