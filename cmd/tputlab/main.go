// Command tputlab regenerates the paper's tables and figures from the
// synthetic Internet.
//
// Usage:
//
//	tputlab list
//	tputlab run <experiment>|all [-scale small|default] [-seed N] [-tests N]
//
// Example:
//
//	tputlab run fig5 -scale small
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"throughputlab/internal/datasets"
	"throughputlab/internal/experiments"
	"throughputlab/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-12s %s\n", e.Name, e.Paper)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "report":
		if err := reportCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "tputlab:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tputlab: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tputlab list                                  show available experiments
  tputlab run <name>|all [flags]                regenerate a table/figure
  tputlab report [flags]                        caveat-annotated congestion report (§7 checklist)

flags for run/report:
  -scale small|default|large   topology/corpus scale (default "default")
  -json                  (run) emit the result struct as JSON
  -seed N                generation seed (default 1)
  -tests N               NDT corpus size (0 = scale default)`)
}

func reportCmd(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	scale := fs.String("scale", "default", "small or default")
	seed := fs.Int64("seed", 1, "generation seed")
	tests := fs.Int("tests", 0, "NDT corpus size override")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.DefaultOptions()
	if *scale == "small" {
		opts = experiments.QuickOptions()
	}
	opts.Topo.Seed = *seed
	if *tests > 0 {
		opts.Collect.Tests = *tests
	}
	env, err := experiments.NewEnv(opts)
	if err != nil {
		return err
	}
	fmt.Println(report.Build(env, report.DefaultConfig()).Render())
	return nil
}

func runCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("run requires an experiment name (try 'tputlab list')")
	}
	name := args[0]
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scale := fs.String("scale", "default", "small, default or large")
	seed := fs.Int64("seed", 1, "generation seed")
	tests := fs.Int("tests", 0, "NDT corpus size override")
	asJSON := fs.Bool("json", false, "emit the result struct as JSON instead of a table")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	opts := experiments.DefaultOptions()
	switch *scale {
	case "small":
		opts = experiments.QuickOptions()
	case "large":
		opts.Topo.Scale = datasets.LargeScale()
	}
	opts.Topo.Seed = *seed
	if *tests > 0 {
		opts.Collect.Tests = *tests
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating world (scale=%s seed=%d)...\n", *scale, *seed)
	env, err := experiments.NewEnv(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "world: %s\n", env.World.Topo.CollectStats())
	fmt.Fprintf(os.Stderr, "platforms: %d M-Lab servers, %d Speedtest servers; corpus: %d tests, %d traces (%.1fs)\n",
		len(env.World.MLabServers()), len(env.World.Speedtest),
		len(env.Corpus.Tests), len(env.Corpus.Traces), time.Since(start).Seconds())

	if name == "all" {
		out, err := experiments.RunAll(env)
		fmt.Print(out)
		return err
	}
	entry, ok := experiments.Find(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try 'tputlab list')", name)
	}
	r, err := entry.Run(env)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(r)
	}
	fmt.Println(r.Render())
	return nil
}
