package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("c") != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}

	h := r.Histogram("h", Bounds(1, 2, 4))
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("histogram sum = %g, want 106", got)
	}
	if got := h.Mean(); got != 106.0/5 {
		t.Errorf("histogram mean = %g, want %g", got, 106.0/5)
	}
	d := r.Snapshot()
	hd := d.Histograms["h"]
	wantBuckets := []uint64{2, 1, 1, 1} // ≤1, ≤2, ≤4, +Inf
	if len(hd.Buckets) != len(wantBuckets) {
		t.Fatalf("bucket count = %d, want %d", len(hd.Buckets), len(wantBuckets))
	}
	for i, want := range wantBuckets {
		if hd.Buckets[i].Count != want {
			t.Errorf("bucket %d = %d, want %d", i, hd.Buckets[i].Count, want)
		}
	}
}

// TestNilRegistryNoOps asserts the disabled path: every operation on a
// nil registry and on the handles it returns is a safe no-op.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter not zero")
	}
	g := r.Gauge("g")
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge not zero")
	}
	h := r.Histogram("h", Bounds(1))
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil histogram not zero")
	}
	sp := r.Span("phase")
	child := sp.Child("sub")
	child.End()
	sp.End()
	if sp.Name() != "" || sp.Duration() != 0 {
		t.Error("nil span not inert")
	}
	if s := r.Summary(); s != "" {
		t.Errorf("nil registry summary = %q, want empty", s)
	}
	d := r.Snapshot()
	if d == nil || len(d.Counters) != 0 || len(d.Spans) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	outer := r.Span("outer")
	inner := r.Span("inner")
	leaf := r.Span("leaf")
	leaf.End()
	inner.End()
	// Concurrent-style children attach explicitly.
	c1 := outer.Child("c1")
	c2 := outer.Child("c2")
	c2.End()
	c1.End()
	outer.End()
	sibling := r.Span("sibling")
	sibling.End()

	d := r.Snapshot()
	if len(d.Spans) != 2 || d.Spans[0].Name != "outer" || d.Spans[1].Name != "sibling" {
		t.Fatalf("roots = %+v, want [outer sibling]", d.Spans)
	}
	names := make([]string, 0, 3)
	for _, c := range d.Spans[0].Children {
		names = append(names, c.Name)
	}
	if strings.Join(names, ",") != "inner,c1,c2" {
		t.Errorf("outer children = %v, want [inner c1 c2]", names)
	}
	if len(d.Spans[0].Children[0].Children) != 1 || d.Spans[0].Children[0].Children[0].Name != "leaf" {
		t.Errorf("inner children = %+v, want [leaf]", d.Spans[0].Children[0].Children)
	}
}

// TestSpanEndOutOfOrder asserts a missing inner End cannot wedge the
// sequential stack: ending an outer span pops everything above it.
func TestSpanEndOutOfOrder(t *testing.T) {
	r := NewRegistry()
	outer := r.Span("outer")
	_ = r.Span("forgotten") // never ended
	outer.End()
	after := r.Span("after")
	after.End()
	d := r.Snapshot()
	if len(d.Spans) != 2 || d.Spans[1].Name != "after" {
		t.Fatalf("roots = %+v, want [outer after]", d.Spans)
	}
	outer.End() // double End is a no-op
	if got := outer.Duration(); got <= 0 {
		t.Errorf("outer duration = %v, want > 0", got)
	}
}

func TestSpanDurationRecorded(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("sleep")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if d := sp.Duration(); d < 2*time.Millisecond {
		t.Errorf("duration = %v, want >= 2ms", d)
	}
	fixed := sp.Duration()
	time.Sleep(time.Millisecond)
	if sp.Duration() != fixed {
		t.Error("ended span duration not fixed")
	}
}

// TestWriteJSONRoundTrip asserts the dump is valid JSON with the keys
// the CI metrics job requires.
func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("resolver.segment.hits").Add(7)
	r.Gauge("collect.shard.00.tests").Set(19)
	r.Histogram("resolver.resolve.hops", Bounds(4, 8)).Observe(6)
	sp := r.Span("generate")
	sp.Child("generate.bgp").End()
	sp.End()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Counters   map[string]uint64 `json:"counters"`
		Gauges     map[string]int64  `json:"gauges"`
		Histograms map[string]struct {
			Count   uint64 `json:"count"`
			Buckets []struct {
				Upper string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
		Spans []struct {
			Name     string          `json:"name"`
			Millis   float64         `json:"ms"`
			Children json.RawMessage `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if d.Counters["resolver.segment.hits"] != 7 {
		t.Error("counter missing from dump")
	}
	if d.Gauges["collect.shard.00.tests"] != 19 {
		t.Error("gauge missing from dump")
	}
	h := d.Histograms["resolver.resolve.hops"]
	if h.Count != 1 || len(h.Buckets) != 3 || h.Buckets[2].Upper != "+Inf" {
		t.Errorf("histogram dump wrong: %+v", h)
	}
	if len(d.Spans) != 1 || d.Spans[0].Name != "generate" {
		t.Errorf("spans dump wrong: %+v", d.Spans)
	}
}

func TestSummaryRendersEverything(t *testing.T) {
	r := NewRegistry()
	r.Counter("mapit.links.classified").Add(42)
	r.Gauge("topogen.routers").Set(1472)
	r.Histogram("resolver.inter.candidates", Bounds(1, 2)).Observe(2)
	sp := r.Span("collect")
	sp.Child("collect.execute").End()
	sp.End()
	s := r.Summary()
	for _, want := range []string{
		"phases:", "collect", "collect.execute",
		"counters:", "mapit.links.classified", "42",
		"gauges:", "topogen.routers", "1472",
		"histograms:", "resolver.inter.candidates",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestRegistryConcurrentShards hammers one registry from many
// goroutines — counters, gauges, histograms, registration of the same
// and distinct names, and child spans — mirroring how CollectParallel's
// shards and RunParallel's workers share the CLI registry. Run under
// -race in CI.
func TestRegistryConcurrentShards(t *testing.T) {
	r := NewRegistry()
	parent := r.Span("parallel")
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := parent.Child("shard")
			shared := r.Counter("shared")
			own := r.Counter("own." + string(rune('a'+w)))
			g := r.Gauge("level")
			h := r.Histogram("hist", Bounds(10, 100, 1000))
			for i := 0; i < perWorker; i++ {
				shared.Inc()
				own.Inc()
				g.Add(1)
				h.Observe(float64(i))
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	parent.End()

	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("hist", nil)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * float64(perWorker*(perWorker-1)) / 2
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
	d := r.Snapshot()
	if len(d.Spans) != 1 || len(d.Spans[0].Children) != workers {
		t.Errorf("span tree: %d roots, %d children; want 1 root with %d children",
			len(d.Spans), len(d.Spans[0].Children), workers)
	}
}

// TestDisabledHandlesZeroAlloc pins the disabled-path contract: metric
// updates through nil handles must never allocate, so uninstrumented
// hot paths (the PR-2 resolver and collection loops) cannot regress.
func TestDisabledHandlesZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", Bounds(1))
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(3)
		h.Observe(2)
	}); n != 0 {
		t.Errorf("disabled metric update allocates %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		sp := r.Span("s")
		sp.Child("c").End()
		sp.End()
	}); n != 0 {
		t.Errorf("disabled span allocates %v allocs/op, want 0", n)
	}
	bus := r.Events()
	if n := testing.AllocsPerRun(100, func() {
		bus.Publish("collect.chunk", "", 0, 1)
	}); n != 0 {
		t.Errorf("disabled event publish allocates %v allocs/op, want 0", n)
	}
}

// TestEnabledUpdateZeroAlloc pins the enabled hot increment path at
// zero allocations too — only registration (name lookup) may allocate.
func TestEnabledUpdateZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", Bounds(1, 2, 4))
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(3)
	}); n != 0 {
		t.Errorf("enabled metric update allocates %v allocs/op, want 0", n)
	}
}
