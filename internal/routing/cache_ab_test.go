package routing_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"

	"throughputlab/internal/platform"
	"throughputlab/internal/routing"
	"throughputlab/internal/topogen"
)

// pathFingerprint digests every field of a resolved path that
// downstream consumers (netsim, traceroute, ndt ground truth) read, in
// the style of the platform corpus hash: two paths fingerprint equal
// only if they are observably identical.
func pathFingerprint(rv *routing.Resolver, p *routing.Path) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "src=%d dst=%d rtt=%.9g\n", uint32(p.Src.Addr), uint32(p.Dst.Addr), rv.RTTms(p))
	for _, hop := range p.Hops {
		fmt.Fprintf(h, "h %d", hop.Router.ID)
		if hop.InLink != nil {
			fmt.Fprintf(h, " l%d", hop.InLink.ID)
		}
		if hop.Ingress != nil {
			fmt.Fprintf(h, " i%d", uint32(hop.Ingress.Addr))
		}
		fmt.Fprintln(h)
	}
	for _, l := range p.Links {
		fmt.Fprintf(h, "L %d %d\n", l.ID, l.Kind)
	}
	for _, asn := range p.ASPath {
		fmt.Fprintf(h, "a %d\n", asn)
	}
	for _, l := range p.InterdomainLinks() {
		fmt.Fprintf(h, "x %d\n", l.ID)
	}
	return h.Sum64()
}

// abEndpoints draws a deterministic sample of (src, dst, flowKey)
// resolution requests over a world: server→client and client→server
// pairs, the two shapes every NDT test and traceroute resolves.
type abCase struct {
	src, dst routing.Endpoint
	key      uint64
}

func abCases(w *topogen.World, seed int64, n int) []abCase {
	rng := rand.New(rand.NewSource(seed))
	households := platform.BuildPopulation(w, 3, seed)
	servers := w.MLabServers()
	out := make([]abCase, 0, 2*n)
	for i := 0; i < n; i++ {
		h := households[rng.Intn(len(households))]
		s := servers[rng.Intn(len(servers))]
		entropy := rng.Uint32()
		down := routing.FlowKey(s.Endpoint.Addr, h.Endpoint.Addr, entropy)
		up := routing.FlowKey(h.Endpoint.Addr, s.Endpoint.Addr, entropy)
		out = append(out,
			abCase{src: s.Endpoint, dst: h.Endpoint, key: down},
			abCase{src: h.Endpoint, dst: s.Endpoint, key: up})
	}
	return out
}

// TestCachedResolverByteIdentical is the memoization layer's identity
// contract: for random worlds, endpoints, and flow keys, the cached
// resolver produces paths observably identical to a cache-disabled
// resolver — resolved twice, so the second pass also exercises warm
// cache hits against the cold fingerprints.
func TestCachedResolverByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := topogen.SmallConfig()
		cfg.Seed = seed
		w := topogen.MustGenerate(cfg)
		cached := w.Resolver // topogen builds the caching resolver
		uncached := routing.New(w.Topo, w.Routes)
		uncached.DisableCache()

		cases := abCases(w, seed*1000+13, 150)
		for pass := 0; pass < 2; pass++ {
			for i, c := range cases {
				pc, errC := cached.Resolve(c.src, c.dst, c.key)
				pu, errU := uncached.Resolve(c.src, c.dst, c.key)
				if (errC == nil) != (errU == nil) {
					t.Fatalf("seed %d case %d: cached err=%v uncached err=%v", seed, i, errC, errU)
				}
				if errC != nil {
					continue
				}
				if got, want := pathFingerprint(cached, pc), pathFingerprint(uncached, pu); got != want {
					t.Fatalf("seed %d pass %d case %d (%d->%d key %d): cached path %#x != uncached %#x",
						seed, pass, i, c.src.Addr, c.dst.Addr, c.key, got, want)
				}
			}
		}
		st := cached.Stats()
		if st.SegmentHits == 0 || st.InterHits == 0 || st.ASPathHits == 0 {
			t.Errorf("seed %d: expected warm-cache hits, got %+v", seed, st)
		}
		if ust := uncached.Stats(); ust.SegmentHits+ust.SegmentMisses+ust.InterHits+ust.ASPathHits != 0 {
			t.Errorf("seed %d: cache-disabled resolver recorded cache traffic: %+v", seed, ust)
		}
	}
}

// TestResolverConcurrentWarmup exercises cold-cache warm-up under
// concurrent Resolve calls (run with -race): many goroutines resolve
// an overlapping request set against a fresh resolver, and every
// result must match the serial uncached resolution.
func TestResolverConcurrentWarmup(t *testing.T) {
	w := topogen.MustGenerate(topogen.SmallConfig())
	fresh := routing.New(w.Topo, w.Routes)
	uncached := routing.New(w.Topo, w.Routes)
	uncached.DisableCache()

	cases := abCases(w, 99, 120)
	want := make([]uint64, len(cases))
	for i, c := range cases {
		p, err := uncached.Resolve(c.src, c.dst, c.key)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pathFingerprint(uncached, p)
	}

	const goroutines = 8
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the cases from a different offset so
			// cold keys are hit from several goroutines at once.
			for i := range cases {
				c := cases[(i+g*17)%len(cases)]
				p, err := fresh.Resolve(c.src, c.dst, c.key)
				if err != nil {
					errs[g] = err
					return
				}
				if got := pathFingerprint(fresh, p); got != want[(i+g*17)%len(cases)] {
					errs[g] = fmt.Errorf("goroutine %d: path fingerprint mismatch at case %d", g, (i+g*17)%len(cases))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := fresh.Stats()
	if st.SegmentMisses == 0 || st.SegmentHits == 0 {
		t.Errorf("expected both misses and hits after concurrent warm-up, got %+v", st)
	}
}
