// Package datasets embeds the static data that parameterizes the
// synthetic Internet: the paper's Table 1 subscriber counts, per-ISP
// interconnection profiles, transit-provider and content-network
// rosters, US metro areas, and a popular-content domain list standing
// in for the Alexa US top-500 (§5.1).
//
// The profiles are calibrated so that the *shapes* the paper reports
// emerge from the generated topology: which access ISPs peer directly
// with the networks hosting M-Lab servers (Figure 1), how many metros
// and parallel links realize each AS-level interconnection (Table 2),
// and the relative sizes of customer/peer/provider border sets
// (Table 3). EXPERIMENTS.md records the paper-vs-measured comparison.
package datasets

import "throughputlab/internal/geo"

// USMetros returns the metro areas used by the synthetic topology.
// Weights approximate relative metro population and drive client
// placement and background traffic.
func USMetros() []geo.Metro {
	return []geo.Metro{
		{Code: "nyc", Name: "New York", Lat: 40.71, Lon: -74.01, UTCOffset: -5, Weight: 20.0},
		{Code: "lax", Name: "Los Angeles", Lat: 34.05, Lon: -118.24, UTCOffset: -8, Weight: 13.0},
		{Code: "chi", Name: "Chicago", Lat: 41.88, Lon: -87.63, UTCOffset: -6, Weight: 9.5},
		{Code: "dfw", Name: "Dallas", Lat: 32.78, Lon: -96.80, UTCOffset: -6, Weight: 7.6},
		{Code: "hou", Name: "Houston", Lat: 29.76, Lon: -95.37, UTCOffset: -6, Weight: 7.1},
		{Code: "wdc", Name: "Washington DC", Lat: 38.91, Lon: -77.04, UTCOffset: -5, Weight: 6.3},
		{Code: "mia", Name: "Miami", Lat: 25.76, Lon: -80.19, UTCOffset: -5, Weight: 6.1},
		{Code: "phl", Name: "Philadelphia", Lat: 39.95, Lon: -75.17, UTCOffset: -5, Weight: 6.1},
		{Code: "atl", Name: "Atlanta", Lat: 33.75, Lon: -84.39, UTCOffset: -5, Weight: 6.0},
		{Code: "phx", Name: "Phoenix", Lat: 33.45, Lon: -112.07, UTCOffset: -7, Weight: 4.9},
		{Code: "bos", Name: "Boston", Lat: 42.36, Lon: -71.06, UTCOffset: -5, Weight: 4.9},
		{Code: "sfo", Name: "San Francisco", Lat: 37.77, Lon: -122.42, UTCOffset: -8, Weight: 4.7},
		{Code: "det", Name: "Detroit", Lat: 42.33, Lon: -83.05, UTCOffset: -5, Weight: 4.3},
		{Code: "sea", Name: "Seattle", Lat: 47.61, Lon: -122.33, UTCOffset: -8, Weight: 4.0},
		{Code: "min", Name: "Minneapolis", Lat: 44.98, Lon: -93.27, UTCOffset: -6, Weight: 3.7},
		{Code: "sdg", Name: "San Diego", Lat: 32.72, Lon: -117.16, UTCOffset: -8, Weight: 3.3},
		{Code: "den", Name: "Denver", Lat: 39.74, Lon: -104.99, UTCOffset: -7, Weight: 2.9},
		{Code: "stl", Name: "St. Louis", Lat: 38.63, Lon: -90.20, UTCOffset: -6, Weight: 2.8},
		{Code: "clt", Name: "Charlotte", Lat: 35.23, Lon: -80.84, UTCOffset: -5, Weight: 2.6},
		{Code: "sjc", Name: "San Jose", Lat: 37.34, Lon: -121.89, UTCOffset: -8, Weight: 2.0},
		{Code: "msy", Name: "New Orleans", Lat: 29.95, Lon: -90.07, UTCOffset: -6, Weight: 1.3},
	}
}
