// Bordermapping: run the bdrmap analysis from the paper's "bed-us"
// Ark vantage point (a Comcast household in Boston), and score the
// inferred border map against the generator's ground truth — the
// validation the real tool could only do against operator ground truth.
package main

import (
	"fmt"
	"log"

	"throughputlab/internal/alias"
	"throughputlab/internal/bdrmap"
	"throughputlab/internal/mapit"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

func main() {
	world := topogen.MustGenerate(topogen.SmallConfig())

	var vp topogen.ArkVP
	for _, v := range world.ArkVPs {
		if v.Label == "bed-us" {
			vp = v
		}
	}
	fmt.Printf("VP %s: %s client %v\n", vp.Label, vp.ISP, vp.Host.Endpoint.Addr)

	// Collection phase: traceroute to every routed prefix.
	targets := platform.RoutedPrefixTargets(world)
	traces := platform.Campaign(world, vp.Host.Endpoint, targets, traceroute.DefaultArtifacts(), 7)
	fmt.Printf("campaign: %d traces to %d routed prefixes\n", len(traces), len(targets))

	// Analysis phase.
	orgASNs := world.Access[vp.ISP].Org.ASNs
	res := bdrmap.Run(traces, bdrmap.Opts{
		OrgASNs: orgASNs,
		MapIt: mapit.Opts{
			Prefix2AS: world.Topo.OriginOf,
			IsIXP: func(a netaddr.Addr) bool {
				for _, p := range world.Topo.IXPPrefixes {
					if p.Contains(a) {
						return true
					}
				}
				return false
			},
			SameOrg: func(x, y topology.ASN) bool { return x == y || world.Topo.SameOrg(x, y) },
		},
		Rel: func(n topology.ASN) topology.Rel {
			for _, o := range orgASNs {
				if r := world.Topo.RelOf(o, n); r != topology.RelNone {
					return r
				}
			}
			return topology.RelNone
		},
		Alias:     alias.New(world.Topo),
		AliasSeed: 9,
	})

	fmt.Printf("\nborder map: %d AS-level, %d router-level interconnections\n",
		res.ASCount, res.RouterCount)
	for _, rel := range []topology.Rel{topology.RelCustomer, topology.RelProvider, topology.RelPeer} {
		e := res.ByRel[rel]
		fmt.Printf("  %-9s AS=%-4d router=%d\n", rel, e.AS, e.Router)
	}

	// Validation against ground truth (the authors report >90%).
	truth := map[topology.ASN]bool{}
	for _, o := range orgASNs {
		for _, n := range world.Topo.Neighbors(o) {
			if world.Topo.RelOf(o, n) != topology.RelSibling {
				truth[n] = true
			}
		}
	}
	correct := 0
	for _, b := range res.Borders {
		if truth[b.Neighbor] {
			correct++
		}
	}
	if res.ASCount == 0 {
		log.Fatal("no borders inferred")
	}
	fmt.Printf("\nvalidation: %d/%d inferred neighbors are true neighbors (%.1f%% precision)\n",
		correct, res.ASCount, 100*float64(correct)/float64(res.ASCount))
	fmt.Printf("ground truth has %d non-sibling neighbors; campaign observed %.1f%% of them\n",
		len(truth), 100*float64(correct)/float64(len(truth)))
	fmt.Println("\n(unobserved neighbors are mostly backup links BGP never prefers — a real VP")
	fmt.Println(" has the same blind spot, which is §5's coverage argument in miniature)")
}
