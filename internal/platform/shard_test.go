package platform

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// corpusHash digests every field of the corpus that downstream
// inference consumes, so two corpora hash equal only if they are
// observably identical.
func corpusHash(c *Corpus) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "tests=%d traces=%d missing=%d\n", len(c.Tests), len(c.Traces), c.TestsWithoutTrace)
	for _, t := range c.Tests {
		fmt.Fprintf(h, "t %d %d %d %d %d %.9g %.9g %.9g %.9g %d\n",
			t.ID, uint32(t.ClientAddr), uint32(t.ServerAddr), t.StartMinute, t.FlowEntropy,
			t.DownMbps, t.UpMbps, t.RTTms, t.RetransRate, t.TruthBottleneck)
	}
	for _, tr := range c.Traces {
		fmt.Fprintf(h, "r %d %d %d %d %v", uint32(tr.SrcAddr), uint32(tr.DstAddr),
			tr.LaunchMinute, tr.FlowEntropy, tr.Reached)
		for _, hop := range tr.Hops {
			fmt.Fprintf(h, " %d", uint32(hop.Addr))
		}
		fmt.Fprintln(h)
	}
	return h.Sum64()
}

// TestCollectParallelDeterminism pins the engine's determinism
// contract: for a fixed seed (and shard count), every worker count
// produces a byte-identical corpus, and serial Collect is the same
// corpus as any CollectParallel.
func TestCollectParallelDeterminism(t *testing.T) {
	cfg := smallCollect()
	serial, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := corpusHash(serial)
	for _, workers := range []int{1, 2, 3, 8} {
		c, err := CollectParallel(world, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := corpusHash(c); got != want {
			t.Errorf("corpus hash with %d workers = %x, want %x (serial)", workers, got, want)
		}
	}
	// A different seed must produce a different corpus (the hash is
	// actually sensitive to the draws).
	cfg2 := cfg
	cfg2.Seed++
	other, err := Collect(world, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if corpusHash(other) == want {
		t.Error("corpus hash insensitive to seed")
	}
	// The shard count is part of the corpus identity: changing it
	// reshards the RNG streams and yields a different (but equally
	// valid) corpus.
	cfg3 := cfg
	cfg3.Shards = DefaultShards * 2
	resharded, err := Collect(world, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if corpusHash(resharded) == want {
		t.Error("corpus hash insensitive to shard count")
	}
}

// TestCollectBattleForNetParallel covers the multi-server scheduling
// branch under parallel execution.
func TestCollectBattleForNetParallel(t *testing.T) {
	cfg := smallCollect()
	cfg.Tests = 300
	cfg.BattleForNet = true
	serial, err := Collect(world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CollectParallel(world, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if corpusHash(serial) != corpusHash(par) {
		t.Error("BattleForNet corpus differs between worker counts")
	}
	if len(serial.Tests) < 2*cfg.Tests {
		t.Errorf("BattleForNet produced only %d tests from %d clients", len(serial.Tests), cfg.Tests)
	}
}
