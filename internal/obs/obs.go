// Package obs is the pipeline's observability layer: a dependency-free
// registry of named counters, gauges, and fixed-bucket histograms, plus
// a phase-span tracer (span.go) and two sinks — a human-readable
// summary and a JSON dump (sink.go).
//
// Design constraints, in order:
//
//   - Invariance. Instrumentation may never change results. Metrics are
//     passive observers of deterministic computations; every golden hash
//     and byte-identity test in the repo runs with and without a live
//     registry and must not notice (asserted by the platform and
//     experiments golden tests).
//   - Disabled is free. A nil *Registry — and every handle obtained from
//     one — is a valid no-op: Add/Set/Observe/Span on nil receivers
//     return immediately without allocating (pinned at 0 allocs/op by
//     BenchmarkCounterAddDisabled and TestDisabledHandlesZeroAlloc), so
//     instrumented hot paths cost one predictable branch when nobody is
//     looking.
//   - Race-safe. Handles are updated from CollectParallel's and
//     RunParallel's worker pools: all mutation goes through sync/atomic,
//     and registration is mutex-guarded so two goroutines asking for the
//     same name share one metric.
//
// Typical use: the CLI creates one Registry per run (-metrics), threads
// it through topogen.Config, platform.CollectConfig, mapit.Opts, and
// experiments.Options, and renders it once at exit. Layers that keep
// their own always-on counters (routing.Resolver) bind to a private
// registry by default and rebind via their Observe method when a shared
// one is supplied.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of metrics plus a span tracer. The
// zero value is not usable; call NewRegistry. A nil *Registry is the
// canonical disabled registry: every method on it returns a no-op
// handle.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	spanMu sync.Mutex
	roots  []*Span
	stack  []*Span // innermost-open sequential spans

	// Live-telemetry attachments (nil until enabled): the
	// simulated-clock sampler (timeseries.go) and the progress event
	// bus (events.go). Loaded lock-free on the hot paths so an
	// unattached registry pays one atomic load.
	sampler atomic.Pointer[Sampler]
	bus     atomic.Pointer[Bus]
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named monotonic counter, creating it on first
// use. On a nil registry it returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CountersWithPrefix snapshots every counter whose name starts with
// prefix, keyed by full name. On a nil registry it returns nil. The
// fault layer's per-kind outcome counters are read back this way
// ("faults.") by the stats summary and the CLI's JSON sink.
func (r *Registry) CountersWithPrefix(prefix string) map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64)
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) {
			out[name] = c.Value()
		}
	}
	return out
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given ascending upper bounds on first use (an implicit +Inf
// overflow bucket is always appended). Later calls with the same name
// return the existing histogram regardless of bounds. On a nil registry
// it returns a nil (no-op) handle.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Bounds is a convenience constructor for histogram bucket bounds.
func Bounds(bounds ...float64) []float64 { return bounds }

// Counter is a monotonically increasing uint64. The nil handle is a
// no-op; Add is safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on the nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level. The nil handle is a no-op; Set and
// Add are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 on the nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets (upper-bound
// inclusive) plus an overflow bucket, and tracks count and sum. The nil
// handle is a no-op; Observe is safe for concurrent use and allocation
// free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on the nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on the nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observed value (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the p-quantile (p in [0, 1]) by linear
// interpolation inside the bucket that contains the target rank, the
// standard fixed-bucket estimator: a bucket's mass is spread uniformly
// between its lower and upper bound. Observations in the +Inf overflow
// bucket are credited to the largest finite bound (there is nothing to
// interpolate toward), so the estimate is clamped to the configured
// bucket range. Returns 0 on the nil handle or an empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return quantile(h.bounds, counts, p)
}

// quantile is the bucket-interpolation estimator shared by
// Histogram.Quantile and the sink's HistogramDump percentiles. bounds
// holds the finite upper bounds; counts has len(bounds)+1 entries, the
// last being the +Inf overflow bucket.
func quantile(bounds []float64, counts []uint64, p float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(total)
	if target < 1 {
		target = 1 // the quantile of a tiny sample is its first point
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(bounds) {
				// Overflow bucket: clamp to the largest finite bound.
				if len(bounds) == 0 {
					return 0
				}
				return bounds[len(bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			return lower + (bounds[i]-lower)*(target-cum)/float64(c)
		}
		cum = next
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}
