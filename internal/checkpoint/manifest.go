// Package checkpoint makes long campaigns killable and resumable with
// byte-identical results. It wraps a corpus writer (internal/export)
// in crash-safe publication — the corpus is written to a same-directory
// .partial temp file with periodic fsync at chunk boundaries and only
// renamed onto its readable path once the footer is down, so the
// readable path is always absent, a complete prior corpus, or a
// complete current one, never torn — and records enough state in a
// sidecar JSON manifest (flags fingerprint, world hash, last durable
// chunk + CRC) that `tputlab run -resume <manifest>` can verify the
// prefix, reconstruct the writer, and continue collection from the
// chunk after the last durable one. Determinism does the heavy
// lifting: the corpus is a pure function of (world, collect config),
// so the resumed suffix is byte-identical to the same chunks of an
// uninterrupted run.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"throughputlab/internal/platform"
)

// ManifestFormat names the checkpoint manifest schema version.
const ManifestFormat = "tputlab-checkpoint/1"

// ErrInterrupted aliases the platform sentinel so checkpoint callers
// and collection agree on what "interrupted" means.
var ErrInterrupted = platform.ErrInterrupted

// ManifestPath returns the sidecar manifest path for a corpus
// publication path; PartialPath returns its temp-file path. Both live
// in the corpus's own directory so the final rename never crosses a
// filesystem boundary.
func ManifestPath(corpusPath string) string { return corpusPath + ".manifest.json" }

// PartialPath returns the temp path a corpus is written to before the
// rename-on-footer publication.
func PartialPath(corpusPath string) string { return corpusPath + ".partial" }

// Fingerprint pins the campaign identity a partial corpus was
// collected under. Every field participates in resume validation: a
// mismatch on any of them means the suffix would not splice onto the
// prefix (or would silently change the corpus), so Resume refuses.
// Field names double as the CLI flag names in mismatch errors.
type Fingerprint struct {
	// Scale is the -scale profile name.
	Scale string `json:"scale,omitempty"`
	// Seed is the campaign seed (-seed).
	Seed int64 `json:"seed"`
	// Tests is the scheduled test count (-tests).
	Tests int `json:"tests"`
	// Shards is the scheduling shard count (0 = platform default).
	Shards int `json:"shards,omitempty"`
	// ChunkTests is the streamed chunk size (0 = platform default). It
	// is not part of the corpus identity, but it IS part of the
	// checkpoint identity: durable chunk sequence numbers map to byte
	// offsets only at the chunk size the prefix was written with.
	ChunkTests int `json:"chunk_tests,omitempty"`
	// Faults is the -faults profile name ("off" when disabled).
	Faults string `json:"faults,omitempty"`
	// FaultSeed is the -faultseed value (0 = reuse Seed).
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Format is the corpus format, "ndjson" or "columnar".
	Format string `json:"corpus_format"`
	// WorldCRC is export.HeaderFingerprint over the corpus header the
	// prefix was written with — the world hash. At resume time the
	// regenerated world must digest to the same value.
	WorldCRC uint32 `json:"world_crc"`
}

// Diff reports every field where other disagrees with fp, one
// human-readable message per mismatch naming the flag, the manifest
// value, and the conflicting current value. An empty result means the
// fingerprints match.
func (fp Fingerprint) Diff(other Fingerprint) []string {
	var d []string
	add := func(flag string, manifest, current any) {
		d = append(d, fmt.Sprintf("-%s: manifest has %v, current run has %v", flag, manifest, current))
	}
	if fp.Scale != other.Scale {
		add("scale", fp.Scale, other.Scale)
	}
	if fp.Seed != other.Seed {
		add("seed", fp.Seed, other.Seed)
	}
	if fp.Tests != other.Tests {
		add("tests", fp.Tests, other.Tests)
	}
	if fp.Shards != other.Shards {
		add("shards", fp.Shards, other.Shards)
	}
	if fp.ChunkTests != other.ChunkTests {
		add("chunk-tests", fp.ChunkTests, other.ChunkTests)
	}
	if fp.Faults != other.Faults {
		add("faults", fp.Faults, other.Faults)
	}
	if fp.FaultSeed != other.FaultSeed {
		add("faultseed", fp.FaultSeed, other.FaultSeed)
	}
	if fp.Format != other.Format {
		add("corpus-format", fp.Format, other.Format)
	}
	if fp.WorldCRC != other.WorldCRC {
		add("world", fmt.Sprintf("hash %08x", fp.WorldCRC), fmt.Sprintf("hash %08x", other.WorldCRC))
	}
	return d
}

// Durable records the verified-recoverable prefix of the partial
// corpus: everything up to and including chunk Chunks-1 has been
// synced through the OS, fsynced, and checksummed.
type Durable struct {
	// Chunks is how many chunks (from index 0) are durable.
	Chunks int `json:"chunks"`
	// Bytes is the durable prefix length in the partial file; CRC32C is
	// crc32c (Castagnoli) over exactly those bytes.
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
	// Tests, Traces, TestsWithoutTrace and Completeness are the running
	// footer totals over the durable chunks — the state a resumed
	// writer continues accumulating from.
	Tests             int                   `json:"tests"`
	Traces            int                   `json:"traces"`
	TestsWithoutTrace int                   `json:"tests_without_trace"`
	Completeness      platform.Completeness `json:"completeness"`
}

// Manifest is the sidecar JSON a checkpointing writer maintains next
// to its partial corpus. It is rewritten atomically (temp + rename) at
// every chunk-boundary sync point, so a reader always sees a complete,
// internally consistent snapshot.
type Manifest struct {
	Format string `json:"format"`
	// CorpusFinal is the publication path; CorpusPartial the temp file
	// the corpus bytes live in until the footer rename.
	CorpusFinal   string      `json:"corpus_final"`
	CorpusPartial string      `json:"corpus_partial"`
	Fingerprint   Fingerprint `json:"fingerprint"`
	Durable       Durable     `json:"durable"`
}

// LoadManifest reads and validates a checkpoint manifest.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: manifest %s: invalid JSON: %w", path, err)
	}
	if m.Format != ManifestFormat {
		return nil, fmt.Errorf("checkpoint: manifest %s: unsupported format %q (want %q)", path, m.Format, ManifestFormat)
	}
	if m.CorpusPartial == "" || m.CorpusFinal == "" {
		return nil, fmt.Errorf("checkpoint: manifest %s: missing corpus paths", path)
	}
	if m.Durable.Bytes <= 0 {
		return nil, fmt.Errorf("checkpoint: manifest %s: no durable prefix recorded", path)
	}
	return &m, nil
}

// Store writes the manifest atomically: a same-directory temp file is
// written, fsynced, and renamed over the manifest path, so a crash
// mid-update leaves the previous (still valid) manifest in place.
func (m *Manifest) Store(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: writing manifest: %w", err)
	}
	_, werr := f.Write(append(data, '\n'))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: writing manifest: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publishing manifest: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss. Filesystems that refuse to sync directories (some CI overlay
// mounts) are tolerated — the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return nil
	}
	return nil
}
