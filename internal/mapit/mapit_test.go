package mapit

import (
	"math/rand"
	"testing"

	"throughputlab/internal/netaddr"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

func worldOpts() Opts {
	return Opts{
		Prefix2AS: world.Topo.OriginOf,
		IsIXP: func(a netaddr.Addr) bool {
			for _, p := range world.Topo.IXPPrefixes {
				if p.Contains(a) {
					return true
				}
			}
			return false
		},
		SameOrg: func(x, y topology.ASN) bool { return x == y || world.Topo.SameOrg(x, y) },
	}
}

// corpus generates clean server->client traces across ISPs.
func cleanCorpus(t testing.TB, n int) []*traceroute.Trace {
	t.Helper()
	tracer := traceroute.New(world.Topo, world.Resolver, traceroute.Clean())
	var out []*traceroute.Trace
	servers := world.MLabServers()
	isps := []string{"Comcast", "AT&T", "Verizon", "Cox", "Time Warner Cable", "CenturyLink", "Charter", "Frontier"}
	metros := []string{"nyc", "atl", "lax", "chi", "dfw", "sea", "den", "clt"}
	i := 0
	for len(out) < n {
		isp := isps[i%len(isps)]
		metro := metros[(i/len(isps))%len(metros)]
		i++
		cli, ok := world.NewClient(isp, metro)
		if !ok {
			continue
		}
		srv := servers[i%len(servers)]
		tr, err := tracer.Trace(srv.Endpoint, cli, uint32(i), i, nil)
		if err != nil {
			continue
		}
		out = append(out, tr)
	}
	return out
}

func TestFarSideCorrection(t *testing.T) {
	// The defining MAP-IT case: the far-side interface of a /30
	// numbered from the transit's space must be assigned to the access
	// network operating it.
	traces := cleanCorpus(t, 400)
	inf := Run(traces, worldOpts())

	checked := 0
	for _, tr := range traces {
		addrs := tr.ResponsiveAddrs()
		end := len(addrs)
		if tr.Reached {
			end--
		}
		for _, a := range addrs[:end] {
			ifc := world.Topo.IfaceByAddr[a]
			if ifc == nil {
				t.Fatalf("clean trace hop %v unknown", a)
			}
			// Only look at mislabeled-by-origin interfaces.
			origin, ok := world.Topo.OriginOf(a)
			if !ok || origin == ifc.Router.AS || world.Topo.SameOrg(origin, ifc.Router.AS) {
				continue
			}
			checked++
			got, ok := inf.Operator[a]
			if !ok {
				continue
			}
			if got == ifc.Router.AS || world.Topo.SameOrg(got, ifc.Router.AS) {
				continue // corrected ✓
			}
		}
	}
	if checked == 0 {
		t.Fatal("no far-side interfaces exercised; topology lacks the phenomenon")
	}
}

func TestOperatorAccuracy(t *testing.T) {
	traces := cleanCorpus(t, 600)
	inf := Run(traces, worldOpts())

	total, correct := 0, 0
	for a, got := range inf.Operator {
		ifc := world.Topo.IfaceByAddr[a]
		if ifc == nil {
			continue // destination hosts etc.
		}
		total++
		if got == ifc.Router.AS || world.Topo.SameOrg(got, ifc.Router.AS) {
			correct++
		}
	}
	if total < 100 {
		t.Fatalf("only %d interfaces assessed", total)
	}
	acc := float64(correct) / float64(total)
	// Marder et al. report >90% on their datasets; clean traces should
	// reach that here too.
	if acc < 0.9 {
		t.Errorf("operator accuracy %.3f < 0.9 (%d/%d)", acc, correct, total)
	}
}

func TestLinkPrecision(t *testing.T) {
	traces := cleanCorpus(t, 600)
	inf := Run(traces, worldOpts())
	if len(inf.Links) == 0 {
		t.Fatal("no links inferred")
	}
	good := 0
	for _, l := range inf.Links {
		na := world.Topo.IfaceByAddr[l.Near]
		fa := world.Topo.IfaceByAddr[l.Far]
		if na == nil || fa == nil {
			continue
		}
		// A true interdomain crossing: the two routers belong to
		// different orgs and the far interface's link really spans them.
		if !world.Topo.SameOrg(na.Router.AS, fa.Router.AS) && na.Router.AS != fa.Router.AS {
			good++
		}
	}
	prec := float64(good) / float64(len(inf.Links))
	if prec < 0.9 {
		t.Errorf("link precision %.3f < 0.9 (%d/%d)", prec, good, len(inf.Links))
	}
}

func TestLinkRecallOnTraversedBorders(t *testing.T) {
	traces := cleanCorpus(t, 600)
	inf := Run(traces, worldOpts())

	// Ground truth: interdomain (near,far) address pairs traversed.
	truth := map[[2]netaddr.Addr]bool{}
	for _, tr := range traces {
		addrs := tr.ResponsiveAddrs()
		end := len(addrs)
		if tr.Reached {
			end--
		}
		for i := 1; i < end; i++ {
			ia := world.Topo.IfaceByAddr[addrs[i-1]]
			ib := world.Topo.IfaceByAddr[addrs[i]]
			if ia == nil || ib == nil {
				continue
			}
			if ia.Router.AS != ib.Router.AS && !world.Topo.SameOrg(ia.Router.AS, ib.Router.AS) {
				truth[[2]netaddr.Addr{addrs[i-1], addrs[i]}] = true
			}
		}
	}
	found := map[[2]netaddr.Addr]bool{}
	for _, l := range inf.Links {
		found[[2]netaddr.Addr{l.Near, l.Far}] = true
	}
	hit := 0
	for k := range truth {
		if found[k] {
			hit++
		}
	}
	recall := float64(hit) / float64(len(truth))
	if recall < 0.85 {
		t.Errorf("link recall %.3f < 0.85 (%d/%d)", recall, hit, len(truth))
	}
}

func TestASPathOfCollapsesSiblings(t *testing.T) {
	traces := cleanCorpus(t, 200)
	inf := Run(traces, worldOpts())
	for _, tr := range traces[:50] {
		p := inf.ASPathOf(tr)
		if len(p) == 0 {
			continue
		}
		for i := 1; i < len(p); i++ {
			if p[i] == p[i-1] || world.Topo.SameOrg(p[i], p[i-1]) {
				t.Fatalf("AS path %v has un-collapsed sibling hops", p)
			}
		}
	}
}

func TestASPathServerToAdjacentClientIsTwoOrgs(t *testing.T) {
	// A Comcast client one AS hop from a Level3 server: the inferred
	// org-level path should have exactly 2 entries.
	tracer := traceroute.New(world.Topo, world.Resolver, traceroute.Clean())
	var srv topogen.Host
	for _, s := range world.MLabSites {
		if s.HostNet == "Level3" {
			srv = s.Servers[0]
			break
		}
	}
	cli, _ := world.NewClient("Comcast", "nyc")
	tr, err := tracer.Trace(srv.Endpoint, cli, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	inf := Run(cleanCorpus(t, 300), worldOpts())
	p := inf.ASPathOf(tr)
	if len(p) != 2 {
		t.Errorf("Level3->Comcast AS path = %v, want 2 orgs", p)
	}
}

func TestRobustToArtifacts(t *testing.T) {
	// With realistic artifact rates, accuracy degrades gracefully, not
	// catastrophically.
	tracer := traceroute.New(world.Topo, world.Resolver, traceroute.DefaultArtifacts())
	rng := rand.New(rand.NewSource(5))
	var traces []*traceroute.Trace
	servers := world.MLabServers()
	for i := 0; i < 600; i++ {
		cli, ok := world.NewClient([]string{"Comcast", "AT&T", "Cox"}[i%3], []string{"nyc", "atl", "lax"}[(i/3)%3])
		if !ok {
			continue
		}
		tr, err := tracer.Trace(servers[i%len(servers)].Endpoint, cli, uint32(i), i, rng)
		if err == nil {
			traces = append(traces, tr)
		}
	}
	inf := Run(traces, worldOpts())
	total, correct := 0, 0
	for a, got := range inf.Operator {
		ifc := world.Topo.IfaceByAddr[a]
		if ifc == nil {
			continue
		}
		total++
		if got == ifc.Router.AS || world.Topo.SameOrg(got, ifc.Router.AS) {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("nothing inferred")
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("artifact-corpus accuracy %.3f < 0.8", acc)
	}
}

func TestIXPAddressesResolved(t *testing.T) {
	// Campaign traces from an Ark VP cross IXP links; their LAN
	// addresses must get an operator via successor majority.
	vp := world.ArkVPs[0]
	targets := platform.RoutedPrefixTargets(world)
	if len(targets) > 400 {
		targets = targets[:400]
	}
	traces := platform.Campaign(world, vp.Host.Endpoint, targets, traceroute.Clean(), 9)
	inf := Run(traces, worldOpts())
	isIXP := worldOpts().IsIXP
	seen, resolved := 0, 0
	for a := range inf.Operator {
		if isIXP(a) {
			seen++
			resolved++
		}
	}
	// Count IXP addrs observed in traces at all.
	observed := 0
	for _, tr := range traces {
		for _, a := range tr.ResponsiveAddrs() {
			if isIXP(a) {
				observed++
			}
		}
	}
	if observed > 0 && seen == 0 {
		t.Error("IXP addresses observed but none resolved")
	}
	_ = resolved
}

func TestLinksOfMatchesGroundTruthCount(t *testing.T) {
	traces := cleanCorpus(t, 300)
	inf := Run(traces, worldOpts())
	for _, tr := range traces[:40] {
		inferred := inf.LinksOf(tr)
		// Ground truth crossings.
		truth := 0
		addrs := tr.ResponsiveAddrs()
		end := len(addrs)
		if tr.Reached {
			end--
		}
		for i := 1; i < end; i++ {
			ia := world.Topo.IfaceByAddr[addrs[i-1]]
			ib := world.Topo.IfaceByAddr[addrs[i]]
			if ia != nil && ib != nil && !world.Topo.SameOrg(ia.Router.AS, ib.Router.AS) && ia.Router.AS != ib.Router.AS {
				truth++
			}
		}
		if len(inferred) > truth+1 || len(inferred) < truth-1 {
			t.Errorf("trace links inferred %d vs truth %d", len(inferred), truth)
		}
	}
}

func BenchmarkRun(b *testing.B) {
	traces := cleanCorpus(b, 500)
	opts := worldOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(traces, opts)
	}
}

// TestRobustToMalformedTraces: empty traces, single-hop traces, and
// repeated adjacent addresses must not panic or poison the inference.
func TestRobustToMalformedTraces(t *testing.T) {
	good := cleanCorpus(t, 200)
	var weird []*traceroute.Trace
	weird = append(weird, &traceroute.Trace{}) // no hops at all
	weird = append(weird, &traceroute.Trace{   // only stars
		Hops: []traceroute.Hop{{TTL: 1}, {TTL: 2}},
	})
	// A trace with every hop duplicated (some boxes answer twice).
	dup := *good[0]
	dup.Hops = nil
	for _, h := range good[0].Hops {
		dup.Hops = append(dup.Hops, h, h)
	}
	weird = append(weird, &dup)
	// Single responsive hop, unreached.
	weird = append(weird, &traceroute.Trace{
		Hops: []traceroute.Hop{good[1].Hops[0]},
	})

	inf := Run(append(weird, good...), worldOpts())
	if len(inf.Links) == 0 {
		t.Fatal("malformed traces suppressed all inference")
	}
	total, correct := 0, 0
	for a, got := range inf.Operator {
		ifc := world.Topo.IfaceByAddr[a]
		if ifc == nil {
			continue
		}
		total++
		if got == ifc.Router.AS || world.Topo.SameOrg(got, ifc.Router.AS) {
			correct++
		}
	}
	if float64(correct)/float64(total) < 0.9 {
		t.Errorf("accuracy degraded to %d/%d with malformed traces", correct, total)
	}
	// The duplicated-hop trace still yields a sane AS path.
	p := inf.ASPathOf(&dup)
	for i := 1; i < len(p); i++ {
		if p[i] == p[i-1] {
			t.Error("duplicate hops produced repeated AS path entries")
		}
	}
}
