package tomo

import (
	"math/rand"
	"testing"
)

func TestSingleBadLink(t *testing.T) {
	// Star: paths share link "up"; only paths through "bad" fail.
	obs := []Observation[string]{
		{Links: []string{"up", "a"}, Bad: false},
		{Links: []string{"up", "bad"}, Bad: true},
		{Links: []string{"up", "c"}, Bad: false},
		{Links: []string{"up", "bad", "d"}, Bad: true},
	}
	res := SmallestFailureSet(obs)
	if !res.Consistent {
		t.Error("observations are consistent")
	}
	if len(res.Bad) != 1 || res.Bad[0] != "bad" {
		t.Errorf("inferred %v, want [bad]", res.Bad)
	}
}

func TestExonerationByGoodPath(t *testing.T) {
	// "shared" appears in a good path, so the bad path must be blamed
	// on its other link.
	obs := []Observation[string]{
		{Links: []string{"shared", "x"}, Bad: true},
		{Links: []string{"shared", "y"}, Bad: false},
	}
	res := SmallestFailureSet(obs)
	if len(res.Bad) != 1 || res.Bad[0] != "x" {
		t.Errorf("inferred %v, want [x]", res.Bad)
	}
}

func TestGreedyPrefersSharedExplanation(t *testing.T) {
	// Two bad paths share link "s": one bad link beats two.
	obs := []Observation[string]{
		{Links: []string{"a", "s"}, Bad: true},
		{Links: []string{"b", "s"}, Bad: true},
	}
	res := SmallestFailureSet(obs)
	if len(res.Bad) != 1 || res.Bad[0] != "s" {
		t.Errorf("inferred %v, want [s]", res.Bad)
	}
}

func TestInconsistentObservation(t *testing.T) {
	// The bad path's only link is exonerated: inconsistent (e.g. a
	// home-network problem, not a link).
	obs := []Observation[string]{
		{Links: []string{"l"}, Bad: true},
		{Links: []string{"l"}, Bad: false},
	}
	res := SmallestFailureSet(obs)
	if res.Consistent {
		t.Error("should be inconsistent")
	}
	if res.Uncovered != 1 {
		t.Errorf("uncovered = %d, want 1", res.Uncovered)
	}
	if len(res.Bad) != 0 {
		t.Errorf("no link should be blamed, got %v", res.Bad)
	}
}

func TestAllGood(t *testing.T) {
	obs := []Observation[int]{
		{Links: []int{1, 2}, Bad: false},
		{Links: []int{2, 3}, Bad: false},
	}
	res := SmallestFailureSet(obs)
	if len(res.Bad) != 0 || !res.Consistent {
		t.Errorf("all-good should infer nothing: %+v", res)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	obs := []Observation[string]{
		{Links: []string{"p", "q"}, Bad: true},
	}
	for i := 0; i < 20; i++ {
		res := SmallestFailureSet(obs)
		if len(res.Bad) != 1 || res.Bad[0] != "p" {
			t.Fatalf("tie break not deterministic: %v", res.Bad)
		}
	}
}

func TestPlantedFailuresProperty(t *testing.T) {
	// Plant bad links in random path sets; the inference must (a) cover
	// every coverable bad path, (b) never blame an exonerated link, and
	// (c) not exceed the planted set size (greedy ≈ minimal here since
	// observations are generated noise-free).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nLinks := 20 + rng.Intn(30)
		planted := map[int]bool{}
		for len(planted) < 3 {
			planted[rng.Intn(nLinks)] = true
		}
		var obs []Observation[int]
		for p := 0; p < 120; p++ {
			var links []int
			bad := false
			for k := 0; k < 3+rng.Intn(4); k++ {
				l := rng.Intn(nLinks)
				links = append(links, l)
				if planted[l] {
					bad = true
				}
			}
			obs = append(obs, Observation[int]{Links: links, Bad: bad})
		}
		res := SmallestFailureSet(obs)
		if !res.Consistent {
			t.Fatalf("trial %d: noise-free observations judged inconsistent", trial)
		}
		// (b) no exonerated link blamed.
		good := map[int]bool{}
		for _, o := range obs {
			if !o.Bad {
				for _, l := range o.Links {
					good[l] = true
				}
			}
		}
		blamed := map[int]bool{}
		for _, l := range res.Bad {
			if good[l] {
				t.Fatalf("trial %d: blamed exonerated link %d", trial, l)
			}
			blamed[l] = true
		}
		// (a) every bad path covered.
		for _, o := range obs {
			if !o.Bad {
				continue
			}
			covered := false
			for _, l := range o.Links {
				if blamed[l] {
					covered = true
				}
			}
			if !covered {
				t.Fatalf("trial %d: bad path %v uncovered", trial, o.Links)
			}
		}
	}
}

func TestSimplifiedASLevel(t *testing.T) {
	obs := []ASObservation{
		{"GTT", "AT&T", true}, {"GTT", "AT&T", true}, {"GTT", "AT&T", false},
		{"GTT", "Comcast", false}, {"GTT", "Comcast", false}, {"GTT", "Comcast", true},
		{"Cogent", "AT&T", false},
	}
	verdicts := SimplifiedASLevel(obs, 0.5, 2)
	byPair := map[string]PairVerdict{}
	for _, v := range verdicts {
		byPair[v.ServerOrg+"|"+v.ClientOrg] = v
	}
	if !byPair["GTT|AT&T"].Congested {
		t.Error("GTT-AT&T should be flagged (2/3 bad)")
	}
	if byPair["GTT|Comcast"].Congested {
		t.Error("GTT-Comcast should not be flagged (1/3 bad)")
	}
	// Below min tests: never flagged.
	if byPair["Cogent|AT&T"].Congested {
		t.Error("single test must not flag a pair")
	}
	if byPair["Cogent|AT&T"].Tests != 1 {
		t.Errorf("count wrong: %+v", byPair["Cogent|AT&T"])
	}
	// Sorted output.
	for i := 1; i < len(verdicts); i++ {
		a, b := verdicts[i-1], verdicts[i]
		if a.ServerOrg > b.ServerOrg || (a.ServerOrg == b.ServerOrg && a.ClientOrg > b.ClientOrg) {
			t.Error("verdicts not sorted")
		}
	}
}

func TestASLevelMislocalizesMultiHop(t *testing.T) {
	// The paper's core caveat: a congested second hop (T2-A) makes
	// pairs (S,A) look congested even though the S-A "interconnection"
	// the method blames does not exist as a direct link. Full
	// tomography with path data localizes correctly.
	//
	// Paths: S->T2->A (via links s-t2, t2-a), T2-a congested.
	obs := []Observation[string]{
		{Links: []string{"s-t2", "t2-a"}, Bad: true},
		{Links: []string{"s-t2", "t2-b"}, Bad: false},
		{Links: []string{"x-t2", "t2-a"}, Bad: true},
	}
	res := SmallestFailureSet(obs)
	if len(res.Bad) != 1 || res.Bad[0] != "t2-a" {
		t.Fatalf("full tomography should blame t2-a, got %v", res.Bad)
	}
	// The AS-level view blames the endpoint pair instead.
	asObs := []ASObservation{
		{"S", "A", true}, {"S", "A", true}, {"S", "B", false},
	}
	v := SimplifiedASLevel(asObs, 0.5, 2)
	if !v[0].Congested {
		t.Fatal("AS-level method flags the S-A pair")
	}
	// ...which is precisely the mislocalization: the bad link is t2-a,
	// one hop beyond the S-A adjacency the method assumes.
}

func BenchmarkSmallestFailureSet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var obs []Observation[int]
	for p := 0; p < 2000; p++ {
		var links []int
		for k := 0; k < 8; k++ {
			links = append(links, rng.Intn(500))
		}
		obs = append(obs, Observation[int]{Links: links, Bad: rng.Intn(10) == 0})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SmallestFailureSet(obs)
	}
}

func TestAggregatePaths(t *testing.T) {
	key := func(ls []string) string {
		out := ""
		for _, l := range ls {
			out += l + "|"
		}
		return out
	}
	var obs []Observation[string]
	// Path A: 9 bad, 1 good (lucky test) → aggregated bad.
	for i := 0; i < 10; i++ {
		obs = append(obs, Observation[string]{Links: []string{"s", "a"}, Bad: i != 0})
	}
	// Path B: 1 bad (wifi), 9 good → aggregated good.
	for i := 0; i < 10; i++ {
		obs = append(obs, Observation[string]{Links: []string{"s", "b"}, Bad: i == 0})
	}
	// Path C: too few tests → dropped.
	obs = append(obs, Observation[string]{Links: []string{"s", "c"}, Bad: true})

	agg := AggregatePaths(obs, 0.5, 3, key)
	if len(agg) != 2 {
		t.Fatalf("aggregated to %d paths, want 2", len(agg))
	}
	if !agg[0].Bad || agg[1].Bad {
		t.Fatalf("verdicts wrong: %+v", agg)
	}
	// Tomography over the aggregate localizes cleanly despite the noise.
	res := SmallestFailureSet(agg)
	if len(res.Bad) != 1 || res.Bad[0] != "a" || !res.Consistent {
		t.Errorf("aggregate tomography = %+v, want [a]", res)
	}
	// Without aggregation the lucky test exonerates "a" and the wifi
	// test frames "b" — the inconsistency AggregatePaths exists to fix.
	raw := SmallestFailureSet(obs)
	if raw.Consistent {
		t.Log("note: raw observations happened to stay consistent")
	}
}

func TestAggregatePathsEmpty(t *testing.T) {
	agg := AggregatePaths[string](nil, 0.5, 1, func([]string) string { return "" })
	if len(agg) != 0 {
		t.Error("empty aggregation should be empty")
	}
}
