// Package signatures implements TCP congestion signatures (Sundaresan,
// Dhamdhere, Allman, claffy — IMC 2017, reference [37] of the
// reproduced paper and its stated future work in §7): distinguishing,
// from a single speed test's RTT dynamics, whether the flow was limited
// by an *already congested* link somewhere in the path or whether the
// flow itself drove the queue at an otherwise-unconstrained (typically
// access) bottleneck.
//
// The discriminator: a flow that fills its own bottleneck starts with a
// near-propagation RTT and inflates it as its congestion window builds
// a standing queue; a flow arriving at a saturated link sees a full
// buffer — high RTT — from the very first packets. NDT logs both the
// minimum and the mean flow RTT, so the relative self-inflation
// (mean − min)/min is computable from existing test records. The paper
// argues this is exactly the extra signal speed tests should report
// (§6.2: "is there a more direct way to identify whether a flow was
// congested by an already busy link or whether the flow itself drove
// congestion?").
package signatures

import (
	"fmt"

	"throughputlab/internal/ndt"
)

// Verdict classifies a flow's bottleneck state.
type Verdict int

const (
	// Indeterminate: insufficient RTT signal to call either way.
	Indeterminate Verdict = iota
	// SelfInduced: the flow filled its own (access) bottleneck.
	SelfInduced
	// ExternalCongestion: the flow arrived at an already-busy link.
	ExternalCongestion
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case SelfInduced:
		return "self-induced"
	case ExternalCongestion:
		return "external-congestion"
	case Indeterminate:
		return "indeterminate"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Features are the per-test inputs to the classifier.
type Features struct {
	// MinRTTms approximates the path RTT before self-queueing.
	MinRTTms float64
	// MeanRTTms is the loaded flow RTT.
	MeanRTTms float64
	// LossRate is the flow's retransmission rate.
	LossRate float64
}

// Extract pulls features from an NDT record.
func Extract(t *ndt.Test) Features {
	return Features{MinRTTms: t.RTTMinMs, MeanRTTms: t.RTTms, LossRate: t.RetransRate}
}

// SelfInflation returns (mean − min)/min, the relative RTT growth the
// flow caused (0 when min is unusable).
func (f Features) SelfInflation() float64 {
	if f.MinRTTms <= 0 {
		return 0
	}
	return (f.MeanRTTms - f.MinRTTms) / f.MinRTTms
}

// Config holds classifier thresholds.
type Config struct {
	// MinInflation: relative RTT growth at or above which the flow is
	// called self-induced (it built that queue itself).
	MinInflation float64
	// MaxFlatInflation: growth at or below which, combined with
	// elevated loss, the flow is called externally congested (the
	// queue was someone else's).
	MaxFlatInflation float64
	// MinLoss is the loss floor for an external-congestion call; a flat
	// RTT with no loss just means an unloaded fast path.
	MinLoss float64
}

// DefaultConfig returns thresholds that separate the simulator's two
// regimes cleanly; the original paper trains a decision tree on the
// same two features.
func DefaultConfig() Config {
	return Config{MinInflation: 0.25, MaxFlatInflation: 0.10, MinLoss: 5e-4}
}

// Classify applies the two-feature rule.
func Classify(f Features, cfg Config) Verdict {
	if cfg.MinInflation == 0 {
		cfg = DefaultConfig()
	}
	infl := f.SelfInflation()
	switch {
	case infl >= cfg.MinInflation:
		return SelfInduced
	case infl <= cfg.MaxFlatInflation && f.LossRate >= cfg.MinLoss:
		return ExternalCongestion
	default:
		return Indeterminate
	}
}

// Truth derives the ground-truth label from a simulated test (real
// deployments have no such field — that absence is the paper's point).
func Truth(t *ndt.Test) Verdict {
	if t.TruthSaturated {
		return ExternalCongestion
	}
	return SelfInduced
}

// Confusion is the evaluation of the classifier against ground truth.
type Confusion struct {
	// [truth][verdict] counts; indices are the Verdict values.
	Counts [3][3]int
	Total  int
}

// Evaluate classifies every test and scores it against simulator truth.
func Evaluate(tests []*ndt.Test, cfg Config) Confusion {
	var c Confusion
	for _, t := range tests {
		truth := Truth(t)
		got := Classify(Extract(t), cfg)
		c.Counts[truth][got]++
		c.Total++
	}
	return c
}

// Accuracy is the fraction of determinate verdicts that match truth.
func (c Confusion) Accuracy() float64 {
	correct, determinate := 0, 0
	for truth := 1; truth <= 2; truth++ {
		for got := 1; got <= 2; got++ {
			determinate += c.Counts[truth][got]
			if truth == got {
				correct += c.Counts[truth][got]
			}
		}
	}
	if determinate == 0 {
		return 0
	}
	return float64(correct) / float64(determinate)
}

// DeterminateFrac is the fraction of tests that got a verdict at all.
func (c Confusion) DeterminateFrac() float64 {
	if c.Total == 0 {
		return 0
	}
	ind := c.Counts[SelfInduced][Indeterminate] +
		c.Counts[ExternalCongestion][Indeterminate] +
		c.Counts[Indeterminate][Indeterminate]
	return 1 - float64(ind)/float64(c.Total)
}
