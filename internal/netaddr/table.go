package netaddr

// Table is a longest-prefix-match routing table mapping prefixes to
// values of type V. It is implemented as a binary trie; inserts and
// lookups are O(prefix length). The zero value is not usable; call
// NewTable.
//
// Table is used for prefix→AS mapping (CAIDA-style), IXP prefix lists,
// and client address allocation lookups.
type Table[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{root: &trieNode[V]{}}
}

// Len returns the number of prefixes in the table.
func (t *Table[V]) Len() int { return t.size }

// Insert adds or replaces the value for an exact prefix.
func (t *Table[V]) Insert(p Prefix, v V) {
	n := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := (a >> (31 - i)) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Table[V]) Lookup(addr Addr) (V, Prefix, bool) {
	var (
		best     V
		bestBits = -1
	)
	n := t.root
	a := uint32(addr)
	for i := 0; ; i++ {
		if n.set {
			best, bestBits = n.val, i
		}
		if i == 32 {
			break
		}
		b := (a >> (31 - i)) & 1
		if n.child[b] == nil {
			break
		}
		n = n.child[b]
	}
	if bestBits < 0 {
		var zero V
		return zero, Prefix{}, false
	}
	return best, PrefixFrom(addr, bestBits), true
}

// Get returns the value stored for the exact prefix p.
func (t *Table[V]) Get(p Prefix) (V, bool) {
	n := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := (a >> (31 - i)) & 1
		if n.child[b] == nil {
			var zero V
			return zero, false
		}
		n = n.child[b]
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Walk calls fn for every (prefix, value) pair in the table in
// lexicographic (address, length) order. If fn returns false the walk
// stops.
func (t *Table[V]) Walk(fn func(Prefix, V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Table[V]) walk(n *trieNode[V], addr uint32, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set && !fn(PrefixFrom(Addr(addr), depth), n.val) {
		return false
	}
	if !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	if depth < 32 {
		return t.walk(n.child[1], addr|1<<(31-depth), depth+1, fn)
	}
	return true
}
