package core

import (
	"math/rand"
	"testing"

	"throughputlab/internal/ndt"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/traceroute"
)

// synthCorpus builds a randomized corpus honoring the platform's
// scheduling contract: tests are published in scheduled-minute order,
// each executing 0–10 minutes after its slot, with traceroutes
// launching between 2 minutes before and 10 minutes after the slot.
// sched holds each test's slot minute (the chunk watermark source) and
// traceSlot the spawning test index of each trace, so callers can split
// the corpus into contract-respecting chunks at any boundary.
func synthCorpus(rng *rand.Rand, n int) (tests []*ndt.Test, traces []*traceroute.Trace, sched, traceSlot []int) {
	minute := 0
	for i := 0; i < n; i++ {
		minute += rng.Intn(3) // slots collide often enough to stress ties
		server := netaddr.Addr(1 + rng.Intn(4))
		client := netaddr.Addr(100 + rng.Intn(25))
		tests = append(tests, &ndt.Test{
			ID:          i,
			StartMinute: minute + rng.Intn(11),
			ServerAddr:  server,
			ClientAddr:  client,
		})
		sched = append(sched, minute)
		// Most tests come with a trace, a few with two, some with none —
		// exercising both unmatched tests and consumed-at-most-once
		// tie-breaks on the small pair space.
		for k := 0; k < []int{0, 1, 1, 1, 2}[rng.Intn(5)]; k++ {
			traces = append(traces, &traceroute.Trace{
				SrcAddr:      server,
				DstAddr:      client,
				LaunchMinute: minute - 2 + rng.Intn(13),
				Degraded:     rng.Intn(10) == 0,
			})
			traceSlot = append(traceSlot, i)
		}
	}
	return tests, traces, sched, traceSlot
}

// feedChunks pushes the corpus through sm in chunks of the given test
// count, assigning each trace to the chunk of the test that spawned it.
func feedChunks(sm *StreamMatcher, tests []*ndt.Test, traces []*traceroute.Trace, sched, traceSlot []int, chunk int) {
	ri := 0
	for lo := 0; lo < len(tests); lo += chunk {
		hi := lo + chunk
		if hi > len(tests) {
			hi = len(tests)
		}
		re := ri
		for re < len(traces) && traceSlot[re] < hi {
			re++
		}
		sm.Add(tests[lo:hi], traces[ri:re], sched[hi-1])
		ri = re
	}
}

// matchingEqual compares two Matchings pairing-for-pairing.
func matchingEqual(t *testing.T, label string, want, got *Matching) {
	t.Helper()
	if got.Total != want.Total || got.Degraded != want.Degraded {
		t.Fatalf("%s: totals (%d,%d), want (%d,%d)", label,
			got.Total, got.Degraded, want.Total, want.Degraded)
	}
	if len(got.ByTest) != len(want.ByTest) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.ByTest), len(want.ByTest))
	}
	for id, tr := range want.ByTest {
		if got.ByTest[id] != tr {
			t.Fatalf("%s: test %d paired with %p, want %p", label, id, got.ByTest[id], tr)
		}
	}
}

// TestStreamMatcherMatchesBatch pins the streaming contract: chunked
// matching with watermarks reproduces batch MatchTraces exactly — same
// pairings down to tie-breaks — for both window modes, across chunk
// sizes, on randomized corpora.
func TestStreamMatcherMatchesBatch(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		tests, traces, sched, traceSlot := synthCorpus(rng, 300)
		for _, mode := range []MatchMode{WindowAfter, WindowAround} {
			for _, window := range []int{5, 30} {
				want := MatchTraces(tests, traces, window, mode)
				for _, chunk := range []int{1, 17, 300} {
					sm := NewStreamMatcher(window, mode)
					feedChunks(sm, tests, traces, sched, traceSlot, chunk)
					matchingEqual(t, "stream", want, sm.Finish())
				}
			}
		}
	}
}

// TestStreamMatcherOnPair pins callback mode: every test is surfaced
// exactly once, pairings agree with ByTest mode, and the map stays
// empty.
func TestStreamMatcherOnPair(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tests, traces, sched, traceSlot := synthCorpus(rng, 200)
	want := MatchTraces(tests, traces, 15, WindowAfter)
	sm := NewStreamMatcher(15, WindowAfter)
	seen := map[int]*traceroute.Trace{}
	matched := 0
	sm.OnPair = func(tt *ndt.Test, tr *traceroute.Trace) {
		if _, dup := seen[tt.ID]; dup {
			t.Fatalf("test %d surfaced twice", tt.ID)
		}
		seen[tt.ID] = tr
		if tr != nil {
			matched++
		}
	}
	feedChunks(sm, tests, traces, sched, traceSlot, 37)
	got := sm.Finish()
	if len(got.ByTest) != 0 {
		t.Fatalf("callback mode accumulated %d pairs", len(got.ByTest))
	}
	if len(seen) != len(tests) || got.Total != len(tests) {
		t.Fatalf("surfaced %d tests (Total %d), want %d", len(seen), got.Total, len(tests))
	}
	if matched != want.Matched() {
		t.Fatalf("callback matched %d tests, batch matched %d", matched, want.Matched())
	}
	for id, tr := range want.ByTest {
		if seen[id] != tr {
			t.Fatalf("callback pairing for test %d differs", id)
		}
	}
}

// TestStreamMatcherBoundedBuffer asserts eviction actually happens: on
// a long campaign fed chunk by chunk, in-flight state stays far below
// corpus size.
func TestStreamMatcherBoundedBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tests, traces, sched, traceSlot := synthCorpus(rng, 2000)
	sm := NewStreamMatcher(10, WindowAround)
	peakTests, peakTraces := 0, 0
	ri := 0
	for lo := 0; lo < len(tests); lo += 50 {
		hi := lo + 50
		if hi > len(tests) {
			hi = len(tests)
		}
		re := ri
		for re < len(traces) && traceSlot[re] < hi {
			re++
		}
		sm.Add(tests[lo:hi], traces[ri:re], sched[hi-1])
		ri = re
		pt, pr := sm.InFlight()
		if pt > peakTests {
			peakTests = pt
		}
		if pr > peakTraces {
			peakTraces = pr
		}
	}
	sm.Finish()
	if peakTests > len(tests)/4 || peakTraces > len(traces)/2 {
		t.Fatalf("buffer not bounded: peak %d tests / %d traces of %d/%d total",
			peakTests, peakTraces, len(tests), len(traces))
	}
}
