package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"throughputlab/internal/ndt"
	"throughputlab/internal/placement"
	"throughputlab/internal/signatures"
	"throughputlab/internal/topology"
	"throughputlab/internal/tslp"
)

// ---- E14: TCP congestion signatures (§7 future work / [37]) ----

// SignaturesResult evaluates the congestion-signature classifier.
type SignaturesResult struct {
	Confusion signatures.Confusion
	// ThresholdSweep varies the inflation threshold.
	Sweep []struct {
		MinInflation              float64
		Accuracy, DeterminateFrac float64
	}
}

// Signatures classifies every peak-hour test and scores against
// simulator truth.
func Signatures(e *Env) *SignaturesResult {
	var peak []*ndt.Test
	for _, t := range e.Corpus.Tests {
		h := e.HourOf(t)
		if h >= 18 && h < 23 {
			peak = append(peak, t)
		}
	}
	res := &SignaturesResult{Confusion: signatures.Evaluate(peak, signatures.DefaultConfig())}
	for _, th := range []float64{0.1, 0.2, 0.25, 0.4, 0.6, 1.0} {
		cfg := signatures.DefaultConfig()
		cfg.MinInflation = th
		c := signatures.Evaluate(peak, cfg)
		res.Sweep = append(res.Sweep, struct {
			MinInflation              float64
			Accuracy, DeterminateFrac float64
		}{th, c.Accuracy(), c.DeterminateFrac()})
	}
	return res
}

// Render prints the confusion matrix and sweep.
func (r *SignaturesResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§7 future work — TCP congestion signatures [37] vs simulator ground truth\n")
	c := r.Confusion
	sb.WriteString(fmt.Sprintf("peak-hour tests: %d\n", c.Total))
	name := []string{"indeterminate", "self-induced", "external"}
	var rows [][]string
	for truth := 1; truth <= 2; truth++ {
		rows = append(rows, []string{
			"truth " + name[truth],
			fmt.Sprintf("%d", c.Counts[truth][signatures.SelfInduced]),
			fmt.Sprintf("%d", c.Counts[truth][signatures.ExternalCongestion]),
			fmt.Sprintf("%d", c.Counts[truth][signatures.Indeterminate]),
		})
	}
	sb.WriteString(table([]string{"", "→ self-induced", "→ external", "→ indeterminate"}, rows))
	sb.WriteString(fmt.Sprintf("accuracy (determinate verdicts): %s; determinate fraction: %s\n\n",
		pct(c.Accuracy()), pct(c.DeterminateFrac())))
	rows = nil
	for _, s := range r.Sweep {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", s.MinInflation), pct(s.Accuracy), pct(s.DeterminateFrac),
		})
	}
	sb.WriteString(table([]string{"inflation thr", "accuracy", "determinate"}, rows))
	return sb.String()
}

// ---- E15: TSLP survey (§7 recommendation / [25]) ----

// TSLPResult is the survey of every interdomain link.
type TSLPResult struct {
	Links             int
	TruePos, FalsePos int
	TrueNeg, FalseNeg int
	// Flagged lists the detected links with their elevation.
	Flagged []struct {
		ASA, ASB  topology.ASN
		Metro     string
		Elevation float64
		Truth     bool
	}
	// BytesPerLinkPerDay contrasts TSLP's probe cost with an NDT test
	// (§7: Ark/BISmark/Atlas "are not provisioned to support the
	// bandwidth requirements of NDT" but can run TSLP).
	ProbesPerLinkPerDay int
}

// TSLP runs the lightweight latency survey over all interdomain links.
func TSLP(e *Env) *TSLPResult {
	links := e.World.Topo.InterdomainLinks(0, 0)
	p := &tslp.Prober{Model: e.World.Model, BasePathRTTms: 18, NoiseMs: 0.4}
	rng := rand.New(rand.NewSource(77))
	const days, interval = 5, 15
	results := tslp.Survey(p, links,
		func(l *topology.Link, m int) float64 { return e.World.Topo.MustMetro(l.Metro).LocalHour(m) },
		days, interval, tslp.DefaultConfig(), rng)

	res := &TSLPResult{Links: len(links), ProbesPerLinkPerDay: 24 * 60 / interval}
	for _, l := range links {
		r := results[l.ID]
		truth := l.PeakUtil >= 1
		switch {
		case r.Congested && truth:
			res.TruePos++
		case r.Congested && !truth:
			res.FalsePos++
		case !r.Congested && truth:
			res.FalseNeg++
		default:
			res.TrueNeg++
		}
		if r.Congested {
			res.Flagged = append(res.Flagged, struct {
				ASA, ASB  topology.ASN
				Metro     string
				Elevation float64
				Truth     bool
			}{l.ASA(), l.ASB(), l.Metro, r.ElevationMs, truth})
		}
	}
	sort.Slice(res.Flagged, func(i, j int) bool { return res.Flagged[i].Elevation > res.Flagged[j].Elevation })
	return res
}

// Render prints the survey summary.
func (r *TSLPResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§7 recommendation — TSLP latency survey of every interdomain link [25]\n")
	sb.WriteString(fmt.Sprintf("links probed: %d (%d probes/link/day; an NDT test moves ~MBs, a probe ~100 B)\n",
		r.Links, r.ProbesPerLinkPerDay))
	sb.WriteString(fmt.Sprintf("TP=%d FP=%d FN=%d TN=%d\n\n", r.TruePos, r.FalsePos, r.FalseNeg, r.TrueNeg))
	var rows [][]string
	for i, f := range r.Flagged {
		if i == 15 {
			break
		}
		rows = append(rows, []string{
			fmt.Sprintf("AS%d-AS%d", f.ASA, f.ASB), f.Metro,
			fmt.Sprintf("%.1f ms", f.Elevation), fmt.Sprintf("%v", f.Truth),
		})
	}
	sb.WriteString(table([]string{"link", "metro", "diurnal elevation", "truly saturated"}, rows))
	return sb.String()
}

// ---- E16: topology-aware server placement (§7 recommendation) ----

// PlacementResult compares deployment strategies under a server budget.
type PlacementResult struct {
	Budget   int
	Universe int
	// Coverage trajectories (covered peer interconnections after k
	// servers).
	Greedy, Latency []int
	// ChosenGreedy lists the greedy slots.
	ChosenGreedy []placement.Candidate
}

// Placement runs both strategies at a 12-server budget.
func Placement(e *Env) *PlacementResult {
	m := placement.BuildMatrix(e.World, placement.Candidates(e.World))
	const k = 12
	g := m.Greedy(k, true)
	l := m.LatencyFirst(e.World, k, true)
	return &PlacementResult{
		Budget: k, Universe: g.Universe,
		Greedy: g.CoveredAfter, Latency: l.CoveredAfter,
		ChosenGreedy: g.Chosen,
	}
}

// Render prints the coverage trajectories.
func (r *PlacementResult) Render() string {
	var sb strings.Builder
	sb.WriteString("§7 recommendation — topology-aware vs latency-first server placement\n")
	sb.WriteString(fmt.Sprintf("objective: (ISP, peer) interconnections coverable from the 16 Ark VPs (universe %d)\n", r.Universe))
	var rows [][]string
	for i := 0; i < r.Budget; i++ {
		g, l := "-", "-"
		if i < len(r.Greedy) {
			g = fmt.Sprintf("%d", r.Greedy[i])
		}
		if i < len(r.Latency) {
			l = fmt.Sprintf("%d", r.Latency[i])
		}
		slot := ""
		if i < len(r.ChosenGreedy) {
			slot = r.ChosenGreedy[i].Network + "/" + r.ChosenGreedy[i].Metro
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), g, l, slot})
	}
	sb.WriteString(table([]string{"servers", "topology-aware", "latency-first", "greedy pick"}, rows))
	return sb.String()
}
