package dnsnames

import (
	"strings"
	"testing"

	"throughputlab/internal/geo"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/topology"
)

func TestDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Level3 Communications", "level3.net"},
		{"Cox Communications", "cox.net"},
		{"AT&T Services", "att.net"},
		{"GTT", "gtt.net"},
		{"", "unknown.net"},
	}
	for _, c := range cases {
		if got := Domain(c.in); got != c.want {
			t.Errorf("Domain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPeerToken(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Cox Communications", "COX-COMMUNI"},
		{"Level3 Communications", "LEVEL3-COMM"},
		{"AT&T Services", "AT-T-SERVIC"},
		{"GTT", "GTT"},
		{"", "PEER"},
	}
	for _, c := range cases {
		if got := PeerToken(c.in); got != c.want {
			t.Errorf("PeerToken(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func buildNamedNet(t *testing.T, noPTR float64) (*topology.Topology, *topology.Link) {
	tp := topology.New([]geo.Metro{{Code: "dfw", Name: "Dallas", Lat: 32.8, Lon: -96.8, UTCOffset: -6, Weight: 1}})
	lOrg := &topology.Org{Name: "Level3 Communications"}
	cOrg := &topology.Org{Name: "Cox Communications"}
	tp.AddAS(&topology.AS{ASN: 3356, Name: "Level3", Org: lOrg, Type: topology.ASTypeTransit, Metros: []string{"dfw"}})
	tp.AddAS(&topology.AS{ASN: 22773, Name: "Cox", Org: cOrg, Type: topology.ASTypeAccess, Metros: []string{"dfw"}})
	tp.SetRel(3356, 22773, topology.RelPeer)
	r1 := tp.AddRouter(3356, "dfw", topology.RouterBorder, "edge5.Dallas3")
	r2 := tp.AddRouter(22773, "dfw", topology.RouterBorder, "bb1.Dallas")
	p2p := netaddr.MustParsePrefix("4.68.70.0/30")
	tp.Originate(3356, netaddr.MustParsePrefix("4.68.0.0/16"))
	link := tp.AddLink(r1, r2, topology.LinkSpec{
		Kind: topology.LinkInterdomain, Metro: "dfw", CapacityMbps: 10000,
		AddrA: p2p.Nth(1), AddrOwnerA: 3356,
		AddrB: p2p.Nth(2), AddrOwnerB: 3356,
	})
	Assign(tp, 1, noPTR)
	return tp, link
}

func TestAssignInterdomainNames(t *testing.T) {
	_, link := buildNamedNet(t, 0)
	// Level3-side interface carries the Cox peer token and Level3's
	// domain — the paper's exact convention.
	want := "COX-COMMUNI.edge5.Dallas3.level3.net"
	if link.A.DNSName != want {
		t.Errorf("A-side name = %q, want %q", link.A.DNSName, want)
	}
	if !strings.HasSuffix(link.B.DNSName, ".cox.net") {
		t.Errorf("B-side name = %q, want cox.net suffix", link.B.DNSName)
	}
	if !strings.HasPrefix(link.B.DNSName, "LEVEL3-COMM.") {
		t.Errorf("B-side name = %q, want Level3 peer token", link.B.DNSName)
	}
}

func TestAssignNoPTRFraction(t *testing.T) {
	tp, _ := buildNamedNet(t, 1.0)
	for addr, ifc := range tp.IfaceByAddr {
		if ifc.DNSName != "" {
			t.Errorf("interface %v should have no PTR, got %q", addr, ifc.DNSName)
		}
	}
}

func TestRouterFQDN(t *testing.T) {
	cases := []struct{ in, want string }{
		{"COX-COMMUNI.edge5.Dallas3.level3.net", "edge5.Dallas3.level3.net"},
		{"core1.Atlanta.level3.net", "core1.Atlanta.level3.net"},
		{"", ""},
		{"singlelabel", "singlelabel"},
	}
	for _, c := range cases {
		if got := RouterFQDN(c.in); got != c.want {
			t.Errorf("RouterFQDN(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParallelLinksShareRouterFQDN(t *testing.T) {
	// Two parallel links on the same router pair must produce the same
	// RouterFQDN, which is how the Table 2 analysis groups Cox's 39
	// links into a few router-level interconnects.
	tp, link1 := buildNamedNet(t, 0)
	r1 := link1.A.Router
	r2 := link1.B.Router
	p2p := netaddr.MustParsePrefix("4.68.70.4/30")
	link2 := tp.AddLink(r1, r2, topology.LinkSpec{
		Kind: topology.LinkInterdomain, Metro: "dfw", CapacityMbps: 10000,
		AddrA: p2p.Nth(1), AddrOwnerA: 3356,
		AddrB: p2p.Nth(2), AddrOwnerB: 3356,
	})
	Assign(tp, 2, 0)
	if RouterFQDN(link1.A.DNSName) != RouterFQDN(link2.A.DNSName) {
		t.Errorf("parallel links group differently: %q vs %q",
			RouterFQDN(link1.A.DNSName), RouterFQDN(link2.A.DNSName))
	}
	if link1.A.DNSName != link2.A.DNSName {
		// Same peer, same router: identical names are expected (and
		// harmless — grouping is by suffix).
		t.Logf("names differ: %q vs %q", link1.A.DNSName, link2.A.DNSName)
	}
}
