// Package topology defines the synthetic Internet's ground-truth data
// model: organizations, autonomous systems, routers, interfaces,
// interdomain and intradomain links, IXPs, and the prefix plan.
//
// Everything downstream — BGP route computation, router-level
// forwarding, traceroute simulation, and the MAP-IT / bdrmap inference
// algorithms — operates over this model. The inference packages must
// NOT touch ground-truth fields that a real measurer cannot observe
// (e.g. Interface.Router); they receive only traceroute hops and the
// public datasets (prefix→AS, AS relationships, AS→org, IXP prefixes).
// Tests, however, score inferences against the ground truth kept here.
package topology

import (
	"fmt"
	"sort"

	"throughputlab/internal/geo"
	"throughputlab/internal/netaddr"
)

// ASN is an autonomous system number.
type ASN int

// ASType classifies an AS by its role in the synthetic topology.
type ASType int

const (
	// ASTypeStub is an edge network (enterprise, small hosting) with
	// providers and no customers.
	ASTypeStub ASType = iota
	// ASTypeAccess is a residential broadband access provider; clients
	// live here. Large access providers may also sell transit.
	ASTypeAccess
	// ASTypeTransit is a transit provider (Level3-like). M-Lab servers
	// are hosted in transit networks.
	ASTypeTransit
	// ASTypeContent is a content/CDN network (popular web content).
	ASTypeContent
	// ASTypeIXP is the route-server/peering-LAN organization of an IXP.
	// IXP ASes own peering-LAN prefixes but originate no user traffic.
	ASTypeIXP
)

// String implements fmt.Stringer.
func (t ASType) String() string {
	switch t {
	case ASTypeStub:
		return "stub"
	case ASTypeAccess:
		return "access"
	case ASTypeTransit:
		return "transit"
	case ASTypeContent:
		return "content"
	case ASTypeIXP:
		return "ixp"
	}
	return fmt.Sprintf("ASType(%d)", int(t))
}

// Rel is a business relationship between two adjacent ASes, expressed
// from the perspective of the first AS of the pair.
type Rel int

const (
	// RelNone means the two ASes are not adjacent.
	RelNone Rel = iota
	// RelCustomer: the other AS is my customer (I am its provider).
	RelCustomer
	// RelProvider: the other AS is my provider (I am its customer).
	RelProvider
	// RelPeer: settlement-free or paid peering.
	RelPeer
	// RelSibling: same organization.
	RelSibling
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case RelNone:
		return "none"
	case RelCustomer:
		return "customer"
	case RelProvider:
		return "provider"
	case RelPeer:
		return "peer"
	case RelSibling:
		return "sibling"
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Invert returns the relationship from the other side's perspective.
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

// Org is an organization owning one or more ASes (CAIDA AS→org style).
type Org struct {
	Name string
	ASNs []ASN
}

// AS is one autonomous system.
type AS struct {
	ASN  ASN
	Name string
	Org  *Org
	Type ASType

	// Metros lists the metro codes where this AS has presence (a core
	// router and, for access ISPs, client populations).
	Metros []string

	// Originated lists the prefixes this AS announces into BGP,
	// including client pools and infrastructure space.
	Originated []netaddr.Prefix

	// Routers owned by this AS, by ID.
	Routers []*Router

	// ClientPools maps metro code → prefix from which client addresses
	// in that metro are drawn (access ISPs only).
	ClientPools map[string]netaddr.Prefix
}

// RouterKind distinguishes router roles within an AS.
type RouterKind int

const (
	// RouterCore carries intra-AS traffic within one metro.
	RouterCore RouterKind = iota
	// RouterBorder terminates interdomain links.
	RouterBorder
	// RouterAccess aggregates client last-mile links (access ISPs).
	RouterAccess
)

// String implements fmt.Stringer.
func (k RouterKind) String() string {
	switch k {
	case RouterCore:
		return "core"
	case RouterBorder:
		return "border"
	case RouterAccess:
		return "access"
	}
	return fmt.Sprintf("RouterKind(%d)", int(k))
}

// RouterID identifies a router uniquely across the topology.
type RouterID int

// Router is a ground-truth router. Interfaces are added as links are
// created.
type Router struct {
	ID    RouterID
	AS    ASN
	Metro string
	Kind  RouterKind
	// Name is the DNS-style hostname stem, e.g. "edge5.Dallas3".
	Name string
	// Ifaces lists all interfaces on this router.
	Ifaces []*Interface
}

// Interface is one addressed router interface.
type Interface struct {
	Addr   netaddr.Addr
	Router *Router
	Link   *Link
	// AddrOwner is the ASN out of whose address space this interface is
	// numbered. For point-to-point interdomain links this is often NOT
	// the AS operating the router (§4.2 of the paper) — exactly the
	// ambiguity MAP-IT exists to resolve.
	AddrOwner ASN
	// DNSName is the reverse-DNS name; may be empty (no PTR record).
	DNSName string
}

// LinkKind distinguishes link roles.
type LinkKind int

const (
	// LinkIntra connects two routers of the same AS.
	LinkIntra LinkKind = iota
	// LinkInterdomain connects border routers of two different ASes.
	LinkInterdomain
	// LinkAccessLine is the virtual last-mile link between an access
	// router and a client pool; capacity is per-subscriber tier.
	LinkAccessLine
)

// LinkID identifies a link uniquely across the topology.
type LinkID int

// Link is a ground-truth link between two router interfaces. For
// LinkAccessLine, B is nil and the link fans out to a client pool.
type Link struct {
	ID   LinkID
	Kind LinkKind
	A, B *Interface
	// Metro is where the link physically lives (both ends for
	// interdomain links; interdomain congestion is regional, §4.3).
	Metro string
	// CapacityMbps is the provisioned capacity.
	CapacityMbps float64
	// BaseUtil is the average background utilization (0..1) at the
	// diurnal trough.
	BaseUtil float64
	// PeakUtil is the background utilization at the diurnal peak; a
	// value ≥ 1 means the link saturates at peak hours (congested).
	PeakUtil float64
	// IXP is non-nil when this interdomain link crosses an IXP peering
	// LAN (interfaces numbered from the IXP prefix).
	IXP *IXP
}

// ASA returns the ASN operating end A's router.
func (l *Link) ASA() ASN { return l.A.Router.AS }

// ASB returns the ASN operating end B's router (0 for access lines).
func (l *Link) ASB() ASN {
	if l.B == nil {
		return 0
	}
	return l.B.Router.AS
}

// IXP is an Internet exchange point with a peering-LAN prefix.
type IXP struct {
	Name   string
	Metro  string
	Prefix netaddr.Prefix
}

// Topology is the ground-truth container.
type Topology struct {
	Metros    []geo.Metro
	metroByID map[string]geo.Metro

	Orgs []*Org

	ases  map[ASN]*AS
	order []ASN // deterministic iteration order (insertion)

	rel map[[2]ASN]Rel
	// adj holds the adjacency list behind Neighbors: every ASN that has
	// ever been related to the key. Maintained by SetRel so Neighbors
	// is O(degree) instead of a scan over the whole rel map (which the
	// BGP adjacency build performs once per AS).
	adj map[ASN][]ASN

	// routers is indexed by RouterID: IDs are assigned sequentially by
	// AddRouter, so a slice replaces the former map.
	routers []*Router

	links    []*Link
	nextLink LinkID

	// Arenas for the node types; see slab in alloc.go.
	routerSlab slab[Router]
	linkSlab   slab[Link]
	ifaceSlab  slab[Interface]

	IXPs []*IXP

	// Origin maps prefixes to the originating ASN (the public
	// prefix→AS dataset). Includes client pools and infrastructure.
	Origin *netaddr.Table[ASN]
	// IfaceByAddr resolves an interface address to the interface
	// (ground truth only; not visible to inference).
	IfaceByAddr map[netaddr.Addr]*Interface
	// IXPPrefixes is the public list of IXP peering-LAN prefixes.
	IXPPrefixes []netaddr.Prefix
}

// New returns an empty topology over the given metros.
func New(metros []geo.Metro) *Topology {
	t := &Topology{
		Metros:      metros,
		metroByID:   make(map[string]geo.Metro, len(metros)),
		ases:        make(map[ASN]*AS),
		rel:         make(map[[2]ASN]Rel),
		adj:         make(map[ASN][]ASN),
		Origin:      netaddr.NewTable[ASN](),
		IfaceByAddr: make(map[netaddr.Addr]*Interface),
	}
	for _, m := range metros {
		t.metroByID[m.Code] = m
	}
	return t
}

// Reserve sizes the internal arenas and indices for an expected
// population (routers, links; interfaces and the address index are
// derived as ~2 per link). Generators that know their scale call it
// once up front; under-estimates only cost extra chunk allocations.
func (t *Topology) Reserve(routers, links int) {
	if routers > 0 {
		t.routerSlab.reserve(routers)
		if cap(t.routers) < routers {
			grown := make([]*Router, len(t.routers), routers)
			copy(grown, t.routers)
			t.routers = grown
		}
	}
	if links > 0 {
		t.linkSlab.reserve(links)
		t.ifaceSlab.reserve(2 * links)
		if len(t.links) == 0 && cap(t.links) < links {
			t.links = make([]*Link, 0, links)
		}
		if len(t.IfaceByAddr) == 0 {
			t.IfaceByAddr = make(map[netaddr.Addr]*Interface, 2*links)
		}
	}
}

// Metro returns the metro with the given code.
func (t *Topology) Metro(code string) (geo.Metro, bool) {
	m, ok := t.metroByID[code]
	return m, ok
}

// MustMetro is Metro that panics when the code is unknown.
func (t *Topology) MustMetro(code string) geo.Metro {
	m, ok := t.metroByID[code]
	if !ok {
		panic(fmt.Sprintf("topology: unknown metro %q", code))
	}
	return m
}

// AddAS registers a new AS. It panics on duplicate ASNs (generator bug).
func (t *Topology) AddAS(a *AS) {
	if _, dup := t.ases[a.ASN]; dup {
		panic(fmt.Sprintf("topology: duplicate ASN %d", a.ASN))
	}
	if a.ClientPools == nil {
		a.ClientPools = make(map[string]netaddr.Prefix)
	}
	t.ases[a.ASN] = a
	t.order = append(t.order, a.ASN)
}

// AS returns the AS with the given number, or nil.
func (t *Topology) AS(asn ASN) *AS { return t.ases[asn] }

// ASNs returns all ASNs in deterministic (insertion) order.
func (t *Topology) ASNs() []ASN { return t.order }

// NumASes returns the number of ASes.
func (t *Topology) NumASes() int { return len(t.ases) }

// SetRel records the relationship between a and b, from a's
// perspective, and the inverse for b.
func (t *Topology) SetRel(a, b ASN, r Rel) {
	if _, seen := t.rel[[2]ASN{a, b}]; !seen {
		t.adj[a] = append(t.adj[a], b)
		t.adj[b] = append(t.adj[b], a)
	}
	t.rel[[2]ASN{a, b}] = r
	t.rel[[2]ASN{b, a}] = r.Invert()
}

// RelOf returns the relationship of b as seen from a.
func (t *Topology) RelOf(a, b ASN) Rel { return t.rel[[2]ASN{a, b}] }

// Neighbors returns the ASes adjacent to a, sorted by ASN.
func (t *Topology) Neighbors(a ASN) []ASN {
	adj := t.adj[a]
	out := make([]ASN, 0, len(adj))
	for _, b := range adj {
		if t.rel[[2]ASN{a, b}] != RelNone {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SameOrg reports whether two ASes belong to the same organization.
func (t *Topology) SameOrg(a, b ASN) bool {
	asA, asB := t.ases[a], t.ases[b]
	return asA != nil && asB != nil && asA.Org != nil && asA.Org == asB.Org
}

// AddRouter creates a router for the AS in the metro.
func (t *Topology) AddRouter(asn ASN, metro string, kind RouterKind, name string) *Router {
	a := t.ases[asn]
	if a == nil {
		panic(fmt.Sprintf("topology: AddRouter for unknown AS %d", asn))
	}
	if _, ok := t.metroByID[metro]; !ok {
		panic(fmt.Sprintf("topology: AddRouter in unknown metro %q", metro))
	}
	r := t.routerSlab.alloc()
	*r = Router{ID: RouterID(len(t.routers)), AS: asn, Metro: metro, Kind: kind, Name: name}
	t.routers = append(t.routers, r)
	a.Routers = append(a.Routers, r)
	return r
}

// Router returns the router with the given ID, or nil.
func (t *Topology) Router(id RouterID) *Router {
	if id < 0 || int(id) >= len(t.routers) {
		return nil
	}
	return t.routers[id]
}

// Routers returns all routers in ID order (ground truth).
func (t *Topology) Routers() []*Router { return t.routers }

// NumRouters returns the number of routers.
func (t *Topology) NumRouters() int { return len(t.routers) }

// LinkSpec carries the parameters for AddLink.
type LinkSpec struct {
	Kind         LinkKind
	Metro        string
	CapacityMbps float64
	BaseUtil     float64
	PeakUtil     float64
	// AddrA and AddrB are the interface addresses; AddrOwnerA/B record
	// whose space they come from.
	AddrA, AddrB           netaddr.Addr
	AddrOwnerA, AddrOwnerB ASN
	IXP                    *IXP
}

// AddLink wires a link between routers ra and rb with the given spec,
// registering both interfaces. For access lines rb may be nil and AddrB
// zero.
func (t *Topology) AddLink(ra, rb *Router, spec LinkSpec) *Link {
	l := t.linkSlab.alloc()
	*l = Link{
		ID:           t.nextLink,
		Kind:         spec.Kind,
		Metro:        spec.Metro,
		CapacityMbps: spec.CapacityMbps,
		BaseUtil:     spec.BaseUtil,
		PeakUtil:     spec.PeakUtil,
		IXP:          spec.IXP,
	}
	t.nextLink++
	ifA := t.ifaceSlab.alloc()
	*ifA = Interface{Addr: spec.AddrA, Router: ra, Link: l, AddrOwner: spec.AddrOwnerA}
	l.A = ifA
	ra.Ifaces = append(ra.Ifaces, ifA)
	if !spec.AddrA.IsZero() {
		if prev, dup := t.IfaceByAddr[spec.AddrA]; dup {
			panic(fmt.Sprintf("topology: interface address %v already on router %d", spec.AddrA, prev.Router.ID))
		}
		t.IfaceByAddr[spec.AddrA] = ifA
	}
	if rb != nil {
		ifB := t.ifaceSlab.alloc()
		*ifB = Interface{Addr: spec.AddrB, Router: rb, Link: l, AddrOwner: spec.AddrOwnerB}
		l.B = ifB
		rb.Ifaces = append(rb.Ifaces, ifB)
		if !spec.AddrB.IsZero() {
			if prev, dup := t.IfaceByAddr[spec.AddrB]; dup {
				panic(fmt.Sprintf("topology: interface address %v already on router %d", spec.AddrB, prev.Router.ID))
			}
			t.IfaceByAddr[spec.AddrB] = ifB
		}
	}
	t.links = append(t.links, l)
	return l
}

// Links returns all links (ground truth).
func (t *Topology) Links() []*Link { return t.links }

// InterdomainLinks returns all interdomain links, optionally filtered
// to those between the given AS pair (order-insensitive); pass 0,0 for
// all.
func (t *Topology) InterdomainLinks(a, b ASN) []*Link {
	var out []*Link
	for _, l := range t.links {
		if l.Kind != LinkInterdomain {
			continue
		}
		if a == 0 && b == 0 {
			out = append(out, l)
			continue
		}
		la, lb := l.ASA(), l.ASB()
		if (la == a && lb == b) || (la == b && lb == a) {
			out = append(out, l)
		}
	}
	return out
}

// Originate records that asn announces p, updating the public origin
// table.
func (t *Topology) Originate(asn ASN, p netaddr.Prefix) {
	a := t.ases[asn]
	if a == nil {
		panic(fmt.Sprintf("topology: Originate for unknown AS %d", asn))
	}
	a.Originated = append(a.Originated, p)
	t.Origin.Insert(p, asn)
}

// AddIXP registers an IXP and publishes its prefix in the public list.
func (t *Topology) AddIXP(x *IXP) {
	t.IXPs = append(t.IXPs, x)
	t.IXPPrefixes = append(t.IXPPrefixes, x.Prefix)
}

// OriginOf returns the origin ASN of the longest matching announced
// prefix covering addr (the public prefix→AS view).
func (t *Topology) OriginOf(addr netaddr.Addr) (ASN, bool) {
	asn, _, ok := t.Origin.Lookup(addr)
	return asn, ok
}
