// Diurnal: reproduce the Figure 5 analysis end-to-end — collect a
// crowdsourced NDT corpus against the synthetic Internet, group tests
// by (server, client ISP), and print diurnal throughput with sample
// counts for the congested and the merely-busy pair, plus the §6.1
// bias diagnostics that complicate the comparison.
package main

import (
	"fmt"
	"log"
	"math"

	"throughputlab/internal/core"
	"throughputlab/internal/ndt"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
)

func main() {
	world := topogen.MustGenerate(topogen.SmallConfig())
	cfg := platform.DefaultCollect()
	cfg.Tests = 12000
	corpus, err := platform.Collect(world, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d NDT tests over %d days\n\n", len(corpus.Tests), cfg.Days)

	hourOf := func(t *ndt.Test) float64 {
		return world.Topo.MustMetro(t.ClientMetro).LocalHour(t.StartMinute)
	}

	for _, isp := range []string{"AT&T", "Comcast"} {
		var tests []*ndt.Test
		for _, t := range corpus.Tests {
			if t.ServerNet == "GTT" && t.ServerMetro == "atl" && t.ClientISP == isp {
				tests = append(tests, t)
			}
		}
		fmt.Printf("=== GTT Atlanta → %s (%d tests) ===\n", isp, len(tests))
		s := core.BuildSeries(tests, hourOf)
		means := s.Throughput.Means()
		sds := s.Throughput.Stddevs()
		counts := s.Throughput.Counts()
		fmt.Println("hour  mean±sd Mbps      samples")
		for h := 0; h < 24; h += 2 {
			if math.IsNaN(means[h]) {
				fmt.Printf("%4d  (no samples)\n", h)
				continue
			}
			fmt.Printf("%4d  %6.1f ± %-6.1f  %6d\n", h, means[h], sds[h], counts[h])
		}

		det := core.DefaultDetector()
		det.MinSamples = 10
		v := core.Detect(s, det)
		fmt.Printf("median drop %.0f%%, mean drop %.0f%%, peak CV %.2f → congested=%v\n",
			100*v.Drop, 100*v.MeanDrop, v.PeakCV, v.Congested)

		bias := core.Bias(tests, hourOf, 20)
		fmt.Printf("bias: night/evening sample ratio %.2f, thin hours %v, tests/client p90 %.0f\n\n",
			bias.NightToEveningRatio, bias.ThinHours, bias.TestsPerClientP90)
	}

	fmt.Println("Lesson (§6): the same 'diurnal dip' question has two different answers here —")
	fmt.Println("one pair is saturated (deep drop, low peak variance), the other is a busy shared")
	fmt.Println("medium (shallow dip, high variance) — and off-peak hours barely have samples.")
}
