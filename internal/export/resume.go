// Resume support: replaying the durable prefix of a partial corpus and
// reopening a writer that continues it. A crashed campaign leaves a
// footer-less file; the checkpoint layer (internal/checkpoint) records
// how many chunks and bytes of it are durable, verifies the prefix here
// by CRC, and reopens a writer positioned exactly at the last chunk
// boundary so the resumed file is byte-identical to an uninterrupted
// one.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// crcReader counts and checksums (crc32c) every byte pulled through it.
type crcReader struct {
	r   io.Reader
	n   int64
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, castagnoli, p[:n])
	c.n += int64(n)
	return n, err
}

// PrefixState is everything a resumed writer needs about the durable
// prefix of a partial corpus: identity (header), running footer totals,
// the columnar chunk-index rows, and the prefix length + CRC.
type PrefixState struct {
	// Format is the detected corpus format, "ndjson" or "columnar".
	Format string
	Public *Public
	Meta   StreamMeta
	// Totals is the running footer over the prefix chunks (Footer set).
	Totals StreamFooter
	// Index holds the columnar chunk-index rows of the prefix; empty
	// for NDJSON.
	Index []ChunkIndexEntry
	// Bytes is the prefix length; CRC is crc32c over those bytes.
	Bytes int64
	CRC   uint32
}

// ReplayPrefix reads exactly byteLen bytes of a partial corpus —
// which must end at a chunk boundary, as the checkpoint layer
// guarantees — decodes its first `chunks` chunks through the
// worker-parallel reader, hands each to onChunk, and returns the
// prefix state (totals, columnar index, CRC over the bytes) a resumed
// writer continues from. Bytes between the last decoded chunk and
// byteLen would indicate a corrupt checkpoint and surface through the
// CRC/length cross-checks the caller performs.
func ReplayPrefix(r io.Reader, byteLen int64, chunks int, workers int, onChunk func(*StreamChunk) error) (*PrefixState, error) {
	cr := &crcReader{r: io.LimitReader(r, byteLen)}
	br := bufio.NewReaderSize(cr, 1<<20)
	head, _ := br.Peek(len(columnarMagic))
	var (
		rd     CorpusReader
		format string
		err    error
	)
	if string(head) == columnarMagic {
		format = "columnar"
		rd, err = OpenColumnarWorkers(br, workers)
	} else {
		format = "ndjson"
		rd, err = OpenStreamWorkers(br, workers)
	}
	if err != nil {
		return nil, fmt.Errorf("export: opening corpus prefix: %w", err)
	}
	for i := 0; i < chunks; i++ {
		c, err := rd.Next()
		if err != nil {
			rd.Close()
			return nil, fmt.Errorf("export: replaying corpus prefix: chunk %d of %d: %w", i, chunks, err)
		}
		if onChunk != nil {
			if err := onChunk(c); err != nil {
				rd.Close()
				return nil, err
			}
		}
	}
	ps := &PrefixState{Format: format, Public: rd.Public(), Meta: rd.Meta(), Bytes: byteLen}
	switch v := rd.(type) {
	case *StreamReader:
		ps.Totals = v.ReadTotals()
	case *ColumnarReader:
		ps.Totals = v.ReadTotals()
		ps.Index = append([]ChunkIndexEntry(nil), v.SeenIndex()...)
	}
	// Close stops the read-ahead goroutines; the io.Copy then pulls any
	// bytes they left unread through the CRC so it covers the whole
	// prefix.
	rd.Close()
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, fmt.Errorf("export: reading corpus prefix: %w", err)
	}
	if cr.n != byteLen {
		return nil, fmt.Errorf("export: corpus prefix is %d bytes, checkpoint recorded %d", cr.n, byteLen)
	}
	ps.CRC = cr.sum
	return ps, nil
}

// ResumeCorpusWriter reopens a chunked corpus writer over a file whose
// durable prefix ReplayPrefix just verified; w must be positioned at
// the end of that prefix. The next WriteChunk appends the chunk after
// the prefix, and the final file is byte-identical to an uninterrupted
// campaign's.
func ResumeCorpusWriter(w io.Writer, prefix *PrefixState, workers int) (CorpusWriter, error) {
	switch prefix.Format {
	case "", "ndjson":
		return ResumeStreamWriter(w, prefix.Totals, workers), nil
	case "columnar":
		return ResumeColumnarWriter(w, prefix.Totals, prefix.Bytes, prefix.Index, workers), nil
	}
	return nil, fmt.Errorf("export: unknown corpus format %q (want ndjson or columnar)", prefix.Format)
}

// HeaderFingerprint digests the (format, public, meta) identity triple
// a corpus opens with. The checkpoint manifest records it as the world
// hash: at resume time the regenerated world must fingerprint to the
// same value or the suffix would not splice onto the prefix. The JSON
// marshalling is deterministic (map keys sort), so equal worlds always
// digest equally.
func HeaderFingerprint(format string, public Public, meta StreamMeta) (uint32, error) {
	var name string
	switch format {
	case "", "ndjson":
		name = StreamFormat
	case "columnar":
		name = ColumnarFormat
	default:
		return 0, fmt.Errorf("export: unknown corpus format %q (want ndjson or columnar)", format)
	}
	hdr, err := json.Marshal(streamHeader{Format: name, Public: public, Meta: meta})
	if err != nil {
		return 0, fmt.Errorf("export: encoding corpus header: %w", err)
	}
	return crc32.Checksum(hdr, castagnoli), nil
}
