package routing

import (
	"testing"

	"throughputlab/internal/bgp"
	"throughputlab/internal/geo"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/topology"
)

// testNet builds a two-AS topology with router-level structure:
//
//	AS100 (transit): cores in atl/nyc/lax, borders in atl (x2 parallel
//	links) and nyc toward AS200.
//	AS200 (access): cores+access routers in atl/nyc, borders in atl/nyc.
type testNet struct {
	topo   *topology.Topology
	rv     *Resolver
	server Endpoint
	// clients by metro
	clientATL, clientNYC, clientLAX Endpoint
	atlLinks                        []*topology.Link // parallel atl links
	nycLink                         *topology.Link
}

func buildTestNet(t testing.TB) *testNet {
	metros := []geo.Metro{
		{Code: "atl", Name: "Atlanta", Lat: 33.75, Lon: -84.39, UTCOffset: -5, Weight: 1},
		{Code: "nyc", Name: "New York", Lat: 40.71, Lon: -74.01, UTCOffset: -5, Weight: 1},
		{Code: "lax", Name: "Los Angeles", Lat: 34.05, Lon: -118.24, UTCOffset: -8, Weight: 1},
	}
	tp := topology.New(metros)
	tOrg := &topology.Org{Name: "Transit", ASNs: []topology.ASN{100}}
	aOrg := &topology.Org{Name: "Access", ASNs: []topology.ASN{200}}
	tp.Orgs = append(tp.Orgs, tOrg, aOrg)
	tp.AddAS(&topology.AS{ASN: 100, Name: "Transit", Org: tOrg, Type: topology.ASTypeTransit, Metros: []string{"atl", "nyc", "lax"}})
	tp.AddAS(&topology.AS{ASN: 200, Name: "Access", Org: aOrg, Type: topology.ASTypeAccess, Metros: []string{"atl", "nyc", "lax"}})
	tp.SetRel(100, 200, topology.RelPeer)

	alloc := topology.NewAllocator(netaddr.MustParsePrefix("10.0.0.0/8"))
	infra100 := alloc.MustAlloc(16)
	infra200 := alloc.MustAlloc(16)
	tp.Originate(100, infra100)
	tp.Originate(200, infra200)
	nextAddr := map[topology.ASN]uint64{100: 0, 200: 0}
	addrOf := func(asn topology.ASN) netaddr.Addr {
		p := infra100
		if asn == 200 {
			p = infra200
		}
		nextAddr[asn]++
		return p.Nth(nextAddr[asn])
	}

	// Routers.
	cores100 := map[string]*topology.Router{}
	for _, m := range []string{"atl", "nyc", "lax"} {
		cores100[m] = tp.AddRouter(100, m, topology.RouterCore, "core."+m)
	}
	cores200 := map[string]*topology.Router{}
	access200 := map[string]*topology.Router{}
	for _, m := range []string{"atl", "nyc", "lax"} {
		cores200[m] = tp.AddRouter(200, m, topology.RouterCore, "bb."+m)
		access200[m] = tp.AddRouter(200, m, topology.RouterAccess, "agg."+m)
	}
	b100atl := tp.AddRouter(100, "atl", topology.RouterBorder, "edge1.atl")
	b100nyc := tp.AddRouter(100, "nyc", topology.RouterBorder, "edge1.nyc")
	b200atl := tp.AddRouter(200, "atl", topology.RouterBorder, "br1.atl")
	b200nyc := tp.AddRouter(200, "nyc", topology.RouterBorder, "br1.nyc")

	intra := func(asn topology.ASN, a, b *topology.Router) {
		tp.AddLink(a, b, topology.LinkSpec{
			Kind: topology.LinkIntra, Metro: a.Metro, CapacityMbps: 100000,
			AddrA: addrOf(asn), AddrOwnerA: asn,
			AddrB: addrOf(asn), AddrOwnerB: asn,
		})
	}
	// AS100: core mesh + border attach.
	intra(100, cores100["atl"], cores100["nyc"])
	intra(100, cores100["atl"], cores100["lax"])
	intra(100, cores100["nyc"], cores100["lax"])
	intra(100, cores100["atl"], b100atl)
	intra(100, cores100["nyc"], b100nyc)
	// AS200: core mesh + border/access attach.
	intra(200, cores200["atl"], cores200["nyc"])
	intra(200, cores200["atl"], cores200["lax"])
	intra(200, cores200["nyc"], cores200["lax"])
	intra(200, cores200["atl"], b200atl)
	intra(200, cores200["nyc"], b200nyc)
	for _, m := range []string{"atl", "nyc", "lax"} {
		intra(200, cores200[m], access200[m])
	}

	// Interdomain links: two parallel in atl, one in nyc.
	interdomain := func(ra, rb *topology.Router, metro string) *topology.Link {
		p2p := alloc.MustAlloc(30)
		tp.Originate(100, p2p)
		return tp.AddLink(ra, rb, topology.LinkSpec{
			Kind: topology.LinkInterdomain, Metro: metro, CapacityMbps: 10000,
			BaseUtil: 0.2, PeakUtil: 0.6,
			AddrA: p2p.Nth(1), AddrOwnerA: 100,
			AddrB: p2p.Nth(2), AddrOwnerB: 100,
		})
	}
	atl1 := interdomain(b100atl, b200atl, "atl")
	atl2 := interdomain(b100atl, b200atl, "atl")
	nyc1 := interdomain(b100nyc, b200nyc, "nyc")

	// Client pools and access lines.
	clientEP := func(m string) Endpoint {
		pool := alloc.MustAlloc(20)
		tp.Originate(200, pool)
		tp.AS(200).ClientPools[m] = pool
		line := tp.AddLink(access200[m], nil, topology.LinkSpec{
			Kind: topology.LinkAccessLine, Metro: m, CapacityMbps: 1000,
			BaseUtil: 0.2, PeakUtil: 0.8,
			AddrA: addrOf(200), AddrOwnerA: 200,
		})
		return Endpoint{
			Addr: pool.Nth(10), ASN: 200, Metro: m,
			Router: access200[m].ID, AccessLine: line,
		}
	}
	epATL := clientEP("atl")
	epNYC := clientEP("nyc")
	epLAX := clientEP("lax")

	if errs := tp.Validate(); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatal("invalid test topology")
	}

	routes := bgp.Compute(tp)
	rv := New(tp, routes)
	server := Endpoint{
		Addr: infra100.Nth(9999), ASN: 100, Metro: "atl",
		Router: cores100["atl"].ID,
	}
	return &testNet{
		topo: tp, rv: rv, server: server,
		clientATL: epATL, clientNYC: epNYC, clientLAX: epLAX,
		atlLinks: []*topology.Link{atl1, atl2}, nycLink: nyc1,
	}
}

func TestResolveLocalClient(t *testing.T) {
	n := buildTestNet(t)
	p, err := n.rv.Resolve(n.server, n.clientATL, FlowKey(n.server.Addr, n.clientATL.Addr, 1))
	if err != nil {
		t.Fatal(err)
	}
	inter := p.InterdomainLinks()
	if len(inter) != 1 {
		t.Fatalf("crossed %d interdomain links, want 1", len(inter))
	}
	if inter[0].Metro != "atl" {
		t.Errorf("atl server to atl client crossed %s link", inter[0].Metro)
	}
	// Path: core.atl -> edge1.atl -> br1.atl -> bb.atl -> agg.atl.
	if len(p.Hops) != 5 {
		t.Errorf("hop count %d, want 5: %v", len(p.Hops), hopNames(p))
	}
	// Access line present at the client end.
	last := p.Links[len(p.Links)-1]
	if last.Kind != topology.LinkAccessLine {
		t.Error("path should end with the client's access line")
	}
}

func hopNames(p *Path) []string {
	var out []string
	for _, h := range p.Hops {
		out = append(out, h.Router.Name)
	}
	return out
}

func TestResolveRemoteClientUsesNearerLink(t *testing.T) {
	n := buildTestNet(t)
	// Server in atl, client in lax: the atl interconnect minimizes
	// total distance (atl->atl->lax beats atl->nyc->lax).
	p, err := n.rv.Resolve(n.server, n.clientLAX, FlowKey(n.server.Addr, n.clientLAX.Addr, 1))
	if err != nil {
		t.Fatal(err)
	}
	inter := p.InterdomainLinks()
	if len(inter) != 1 || inter[0].Metro != "atl" {
		t.Errorf("expected atl egress toward lax, got %v", inter[0].Metro)
	}
}

func TestParallelLinkECMPDeterministic(t *testing.T) {
	n := buildTestNet(t)
	seen := map[topology.LinkID]int{}
	for entropy := uint32(0); entropy < 64; entropy++ {
		key := FlowKey(n.server.Addr, n.clientATL.Addr, entropy)
		p, err := n.rv.Resolve(n.server, n.clientATL, key)
		if err != nil {
			t.Fatal(err)
		}
		seen[p.InterdomainLinks()[0].ID]++
		// Same key resolves identically.
		p2, _ := n.rv.Resolve(n.server, n.clientATL, key)
		if p2.InterdomainLinks()[0].ID != p.InterdomainLinks()[0].ID {
			t.Fatal("same flow key chose different links")
		}
	}
	if len(seen) != 2 {
		t.Errorf("ECMP used %d of 2 parallel links: %v", len(seen), seen)
	}
	// Roughly balanced.
	for id, c := range seen {
		if c < 16 {
			t.Errorf("link %d got only %d of 64 flows", id, c)
		}
	}
}

func TestIngressInterfaces(t *testing.T) {
	n := buildTestNet(t)
	p, err := n.rv.Resolve(n.server, n.clientNYC, FlowKey(n.server.Addr, n.clientNYC.Addr, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range p.Hops {
		if i == 0 {
			if h.InLink != nil || h.Ingress != nil {
				t.Error("first hop should have no in-link")
			}
			continue
		}
		if h.InLink == nil || h.Ingress == nil {
			t.Fatalf("hop %d (%s) missing in-link/ingress", i, h.Router.Name)
		}
		if h.Ingress.Router.ID != h.Router.ID {
			t.Errorf("hop %d ingress interface belongs to router %d, not %d",
				i, h.Ingress.Router.ID, h.Router.ID)
		}
	}
	// The interdomain ingress interface must be on the AS200 side.
	for _, h := range p.Hops {
		if h.InLink != nil && h.InLink.Kind == topology.LinkInterdomain {
			if h.Router.AS != 200 {
				t.Error("interdomain ingress should be the AS200 border router")
			}
		}
	}
}

func TestUpstreamPathStartsWithAccessLine(t *testing.T) {
	n := buildTestNet(t)
	p, err := n.rv.Resolve(n.clientATL, n.server, FlowKey(n.clientATL.Addr, n.server.Addr, 3))
	if err != nil {
		t.Fatal(err)
	}
	if p.Links[0].Kind != topology.LinkAccessLine {
		t.Error("upstream path should start with the access line")
	}
	if p.Hops[0].Router.Kind != topology.RouterAccess {
		t.Error("first hop should be the access router")
	}
	if p.Hops[len(p.Hops)-1].Router.ID != topology.RouterID(n.server.Router) {
		t.Error("last hop should be the server's attachment router")
	}
}

func TestASPathRecorded(t *testing.T) {
	n := buildTestNet(t)
	p, err := n.rv.Resolve(n.server, n.clientATL, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ASPath) != 2 || p.ASPath[0] != 100 || p.ASPath[1] != 200 {
		t.Errorf("ASPath = %v", p.ASPath)
	}
}

func TestRTTGrowsWithDistance(t *testing.T) {
	n := buildTestNet(t)
	near, _ := n.rv.Resolve(n.server, n.clientATL, 1)
	far, _ := n.rv.Resolve(n.server, n.clientLAX, 1)
	rttNear := n.rv.RTTms(near)
	rttFar := n.rv.RTTms(far)
	if rttNear <= 0 || rttFar <= rttNear {
		t.Errorf("RTT near=%v far=%v", rttNear, rttFar)
	}
	// Cross-country RTT should be tens of ms.
	if rttFar < 20 || rttFar > 120 {
		t.Errorf("atl->lax RTT = %v ms, implausible", rttFar)
	}
}

func TestNoRouteError(t *testing.T) {
	n := buildTestNet(t)
	bad := Endpoint{Addr: netaddr.MustParseAddr("203.0.113.1"), ASN: 999, Metro: "atl", Router: 0}
	if _, err := n.rv.Resolve(n.server, bad, 1); err == nil {
		t.Error("resolve to unknown AS should fail")
	}
}

func TestFlowKeyDistribution(t *testing.T) {
	// FlowKey must vary with each input.
	a := netaddr.MustParseAddr("10.0.0.1")
	b := netaddr.MustParseAddr("10.0.0.2")
	k1 := FlowKey(a, b, 1)
	if FlowKey(a, b, 2) == k1 {
		t.Error("entropy change should change key")
	}
	if FlowKey(b, a, 1) == k1 {
		t.Error("direction change should change key")
	}
	// Parity balance over entropy values.
	odd := 0
	for e := uint32(0); e < 1000; e++ {
		if FlowKey(a, b, e)%2 == 1 {
			odd++
		}
	}
	if odd < 400 || odd > 600 {
		t.Errorf("flow key parity skewed: %d/1000 odd", odd)
	}
}

func BenchmarkResolve(b *testing.B) {
	n := buildTestNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.rv.Resolve(n.server, n.clientLAX, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
