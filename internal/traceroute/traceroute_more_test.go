package traceroute

import (
	"math/rand"
	"testing"
)

// TestTraceToUnroutableFails: tracing toward an endpoint in an unknown
// AS surfaces an error rather than a fabricated trace.
func TestTraceToUnroutableFails(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	bad := srv
	bad.ASN = 64999 // unallocated in the world
	tr := New(world.Topo, world.Resolver, Clean())
	if _, err := tr.Trace(srv, bad, 1, 0, nil); err == nil {
		t.Error("trace to unknown AS should fail")
	}
}

// TestTraceDNSNamesPropagate: responsive hops carry the PTR names the
// topology assigned (or none, but never a name from another interface).
func TestTraceDNSNamesPropagate(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	cli, _ := world.NewClient("Verizon", "wdc")
	tr := New(world.Topo, world.Resolver, Clean())
	trace, err := tr.Trace(srv, cli, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	named := 0
	for _, h := range trace.Hops[:len(trace.Hops)-1] {
		if h.NoReply() {
			continue
		}
		ifc := world.Topo.IfaceByAddr[h.Addr]
		if ifc == nil {
			t.Fatalf("hop %v not an interface", h.Addr)
		}
		if h.DNSName != ifc.DNSName {
			t.Fatalf("hop %v carries name %q, interface has %q", h.Addr, h.DNSName, ifc.DNSName)
		}
		if h.DNSName != "" {
			named++
		}
	}
	if named == 0 {
		t.Error("no hop carries a PTR name; dnsnames assignment missing")
	}
}

// TestArtifactRatesApproximate: over many traces the realized artifact
// rates track the configured probabilities.
func TestArtifactRatesApproximate(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	art := Artifacts{NoReplyProb: 0.1, DstNoReplyProb: 0.3}
	tr := New(world.Topo, world.Resolver, art)
	rng := rand.New(rand.NewSource(11))
	stars, hops, unreached, traces := 0, 0, 0, 0
	for i := 0; i < 300; i++ {
		cli, ok := world.NewClient("Comcast", []string{"nyc", "chi", "lax"}[i%3])
		if !ok {
			continue
		}
		trace, err := tr.Trace(srv, cli, uint32(i), i, rng)
		if err != nil {
			continue
		}
		traces++
		if !trace.Reached {
			unreached++
		}
		for _, h := range trace.Hops[:len(trace.Hops)-1] {
			hops++
			if h.NoReply() {
				stars++
			}
		}
	}
	starRate := float64(stars) / float64(hops)
	if starRate < 0.05 || starRate > 0.15 {
		t.Errorf("star rate %.3f, configured 0.10", starRate)
	}
	unreachedRate := float64(unreached) / float64(traces)
	if unreachedRate < 0.2 || unreachedRate > 0.4 {
		t.Errorf("unreached rate %.3f, configured 0.30", unreachedRate)
	}
}

// TestThirdPartyPrefersOwnSpace: most third-party replies come from
// interfaces numbered in the router's own AS (the property MAP-IT's
// robustness rests on).
func TestThirdPartyPrefersOwnSpace(t *testing.T) {
	srv := world.MLabServers()[0].Endpoint
	clean := New(world.Topo, world.Resolver, Clean())
	dirty := New(world.Topo, world.Resolver, Artifacts{ThirdPartyProb: 1})
	rng := rand.New(rand.NewSource(13))
	own, foreign := 0, 0
	for i := 0; i < 200; i++ {
		cli, ok := world.NewClient("AT&T", []string{"atl", "dfw"}[i%2])
		if !ok {
			continue
		}
		base, err := clean.Trace(srv, cli, uint32(i), 0, nil)
		if err != nil {
			continue
		}
		tp, _ := dirty.Trace(srv, cli, uint32(i), 0, rng)
		for j := range base.Hops[:len(base.Hops)-1] {
			if base.Hops[j].Addr == tp.Hops[j].Addr || tp.Hops[j].NoReply() {
				continue
			}
			ifc := world.Topo.IfaceByAddr[tp.Hops[j].Addr]
			if ifc == nil {
				continue
			}
			if ifc.AddrOwner == ifc.Router.AS {
				own++
			} else {
				foreign++
			}
		}
	}
	if own+foreign == 0 {
		t.Fatal("no third-party replies observed")
	}
	frac := float64(own) / float64(own+foreign)
	if frac < 0.75 {
		t.Errorf("only %.0f%% of third-party replies use own-space interfaces", 100*frac)
	}
}
