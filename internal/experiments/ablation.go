package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"throughputlab/internal/alias"
	"throughputlab/internal/bdrmap"
	"throughputlab/internal/mapit"
	"throughputlab/internal/platform"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

// AblationResult quantifies the design choices the pipeline leans on:
// MAP-IT's far-side correction, alias-resolution quality, and the
// association window (E18).
type AblationResult struct {
	// MAP-IT far-side correction: link identification precision against
	// ground truth, with and without the correction.
	FarSideOnPrecision, FarSideOffPrecision float64
	LinksOn, LinksOff                       int

	// Alias resolution: Table-3-style router-level border count for one
	// VP, with perfect vs realistic vs no alias resolution.
	RouterPairsPerfect, RouterPairsRealistic, RouterPairsNone int
	ASBorders                                                 int

	// Bidirectional traceroutes (§7: "preferably in both directions"):
	// distinct ground-truth interdomain links discovered with
	// forward-only vs forward+reverse corpora, plus operator accuracy.
	// (Accuracy stays flat — the far-side ambiguity is one hop deep in
	// both directions — but the reverse direction discovers the links
	// the forward corpus never crosses.)
	TrueLinksFwd, TrueLinksBoth     int
	FwdOperatorAcc, BothOperatorAcc float64
}

// Ablation runs the component ablations on fresh, artifact-free inputs
// (isolating the algorithmic choice from measurement noise).
func Ablation(e *Env) *AblationResult {
	res := &AblationResult{}
	w := e.World

	// --- MAP-IT far-side correction ---
	precision := func(inf *mapit.Inference) (float64, int) {
		if len(inf.Links) == 0 {
			return 0, 0
		}
		good := 0
		for _, l := range inf.Links {
			na := w.Topo.IfaceByAddr[l.Near]
			fa := w.Topo.IfaceByAddr[l.Far]
			if na == nil || fa == nil {
				continue
			}
			// A correctly identified link joins routers of different
			// organizations.
			if na.Router.AS != fa.Router.AS && !w.Topo.SameOrg(na.Router.AS, fa.Router.AS) {
				good++
			}
		}
		return float64(good) / float64(len(inf.Links)), len(inf.Links)
	}
	on := mapit.Run(e.Corpus.Traces, e.MapItOpts())
	offOpts := e.MapItOpts()
	offOpts.DisableFarSide = true
	off := mapit.Run(e.Corpus.Traces, offOpts)
	res.FarSideOnPrecision, res.LinksOn = precision(on)
	res.FarSideOffPrecision, res.LinksOff = precision(off)

	// --- Bidirectional traceroutes (§7) ---
	operatorAcc := func(inf *mapit.Inference) float64 {
		total, correct := 0, 0
		for a, got := range inf.Operator {
			ifc := w.Topo.IfaceByAddr[a]
			if ifc == nil {
				continue
			}
			total++
			if got == ifc.Router.AS || w.Topo.SameOrg(got, ifc.Router.AS) {
				correct++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(correct) / float64(total)
	}
	trueLinks := func(inf *mapit.Inference) int {
		seen := map[topology.LinkID]bool{}
		for _, l := range inf.Links {
			fa := w.Topo.IfaceByAddr[l.Far]
			if fa != nil && fa.Link != nil && fa.Link.Kind == topology.LinkInterdomain {
				seen[fa.Link.ID] = true
			}
			na := w.Topo.IfaceByAddr[l.Near]
			if na != nil && na.Link != nil && na.Link.Kind == topology.LinkInterdomain {
				seen[na.Link.ID] = true
			}
		}
		return len(seen)
	}
	res.FwdOperatorAcc = operatorAcc(on)
	res.TrueLinksFwd = trueLinks(on)
	// Synthesize the reverse direction for a sample of matched tests —
	// the client-side traceroutes web NDT clients cannot run (§4.1).
	tracer := traceroute.New(w.Topo, w.Resolver, traceroute.DefaultArtifacts())
	revRng := revRandSource()
	both := append([]*traceroute.Trace{}, e.Corpus.Traces...)
	added := 0
	for _, t := range e.Corpus.Tests {
		if added >= len(e.Corpus.Traces)/4 {
			break
		}
		if e.Matching.ByTest[t.ID] == nil {
			continue
		}
		cli, ok1 := platform.EndpointForAddr(w, t.ClientAddr)
		srv, ok2 := platform.EndpointForAddr(w, t.ServerAddr)
		if !ok1 || !ok2 {
			continue
		}
		tr, err := tracer.Trace(cli, srv, t.FlowEntropy+2, t.StartMinute, revRng)
		if err != nil {
			continue
		}
		both = append(both, tr)
		added++
	}
	bothInf := mapit.Run(both, e.MapItOpts())
	res.BothOperatorAcc = operatorAcc(bothInf)
	res.TrueLinksBoth = trueLinks(bothInf)

	// --- Alias resolution quality (bed-us campaign) ---
	for i := range w.ArkVPs {
		if w.ArkVPs[i].Label != "bed-us" {
			continue
		}
		campaign := platform.Campaign(w, w.ArkVPs[i].Host.Endpoint,
			platform.RoutedPrefixTargets(w), traceroute.DefaultArtifacts(), 777)
		orgASNs := w.Access[w.ArkVPs[i].ISP].Org.ASNs
		base := bdrmap.Opts{
			OrgASNs: orgASNs,
			MapIt:   e.MapItOpts(),
			Rel: func(n topology.ASN) topology.Rel {
				for _, o := range orgASNs {
					if r := w.Topo.RelOf(o, n); r != topology.RelNone {
						return r
					}
				}
				return topology.RelNone
			},
			AliasSeed: 778,
		}
		run := func(a *alias.Resolver) *bdrmap.Result {
			opts := base
			opts.Alias = a
			return bdrmap.Run(campaign, opts)
		}
		perfect := run(alias.Perfect(w.Topo))
		realistic := run(alias.New(w.Topo))
		none := run(nil)
		res.RouterPairsPerfect = perfect.RouterCount
		res.RouterPairsRealistic = realistic.RouterCount
		res.RouterPairsNone = none.RouterCount
		res.ASBorders = perfect.ASCount
		break
	}
	return res
}

// revRandSource seeds the reverse-traceroute artifacts.
func revRandSource() *rand.Rand { return rand.New(rand.NewSource(4242)) }

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var sb strings.Builder
	sb.WriteString("E18 — component ablations\n\n")
	sb.WriteString("MAP-IT far-side correction (link identification precision vs ground truth):\n")
	sb.WriteString(table([]string{"variant", "links inferred", "precision"}, [][]string{
		{"with correction", fmt.Sprintf("%d", r.LinksOn), pct(r.FarSideOnPrecision)},
		{"without (naive prefix→AS)", fmt.Sprintf("%d", r.LinksOff), pct(r.FarSideOffPrecision)},
	}))
	sb.WriteString("\nAlias resolution (bed-us router-level border count; AS-level is " +
		fmt.Sprintf("%d", r.ASBorders) + "):\n")
	sb.WriteString(table([]string{"resolver", "router-level borders"}, [][]string{
		{"perfect", fmt.Sprintf("%d", r.RouterPairsPerfect)},
		{"realistic (missed merges)", fmt.Sprintf("%d", r.RouterPairsRealistic)},
		{"none (1 interface = 1 router)", fmt.Sprintf("%d", r.RouterPairsNone)},
	}))
	sb.WriteString("\nBidirectional traceroutes (§7 \"preferably in both directions\"):\n")
	sb.WriteString(table([]string{"corpus", "true interdomain links found", "operator accuracy"}, [][]string{
		{"forward only (web NDT reality)", fmt.Sprintf("%d", r.TrueLinksFwd), pct(r.FwdOperatorAcc)},
		{"forward + reverse sample", fmt.Sprintf("%d", r.TrueLinksBoth), pct(r.BothOperatorAcc)},
	}))
	sb.WriteString("\nWithout alias resolution every interface looks like a separate router,\n")
	sb.WriteString("inflating router-level interconnection counts — why bdrmap runs it (§5.1).\n")
	return sb.String()
}
