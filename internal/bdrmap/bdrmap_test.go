package bdrmap

import (
	"testing"

	"throughputlab/internal/alias"
	"throughputlab/internal/asrank"
	"throughputlab/internal/mapit"
	"throughputlab/internal/netaddr"
	"throughputlab/internal/platform"
	"throughputlab/internal/topogen"
	"throughputlab/internal/topology"
	"throughputlab/internal/traceroute"
)

var world = topogen.MustGenerate(topogen.SmallConfig())

func optsFor(isp string) Opts {
	an := world.Access[isp]
	orgASNs := an.Org.ASNs
	rep := orgASNs[0]
	return Opts{
		OrgASNs: orgASNs,
		MapIt: mapit.Opts{
			Prefix2AS: world.Topo.OriginOf,
			IsIXP: func(a netaddr.Addr) bool {
				for _, p := range world.Topo.IXPPrefixes {
					if p.Contains(a) {
						return true
					}
				}
				return false
			},
			SameOrg: func(x, y topology.ASN) bool { return x == y || world.Topo.SameOrg(x, y) },
		},
		Rel: func(n topology.ASN) topology.Rel {
			for _, o := range orgASNs {
				if r := world.Topo.RelOf(o, n); r != topology.RelNone {
					return r
				}
			}
			_ = rep
			return topology.RelNone
		},
		Alias:     alias.Perfect(world.Topo),
		AliasSeed: 11,
	}
}

// trueNeighbors returns the ground-truth non-sibling neighbor ASNs of
// an org.
func trueNeighbors(isp string) map[topology.ASN]bool {
	an := world.Access[isp]
	out := map[topology.ASN]bool{}
	for _, o := range an.Org.ASNs {
		for _, n := range world.Topo.Neighbors(o) {
			if world.Topo.RelOf(o, n) == topology.RelSibling {
				continue
			}
			out[n] = true
		}
	}
	return out
}

func campaignFor(t testing.TB, vpLabel string) ([]*traceroute.Trace, string) {
	t.Helper()
	for _, vp := range world.ArkVPs {
		if vp.Label == vpLabel {
			targets := platform.RoutedPrefixTargets(world)
			return platform.Campaign(world, vp.Host.Endpoint, targets, traceroute.Clean(), 3), vp.ISP
		}
	}
	t.Fatalf("no VP %s", vpLabel)
	return nil, ""
}

func TestBordersPrecision(t *testing.T) {
	traces, isp := campaignFor(t, "bed-us")
	res := Run(traces, optsFor(isp))
	if res.ASCount < 5 {
		t.Fatalf("only %d AS borders found", res.ASCount)
	}
	truth := trueNeighbors(isp)
	wrong := 0
	for _, b := range res.Borders {
		if !truth[b.Neighbor] && !world.Topo.SameOrg(b.Neighbor, world.Access[isp].Org.ASNs[0]) {
			wrong++
		}
	}
	prec := 1 - float64(wrong)/float64(res.ASCount)
	// bdrmap validates >90% on ground truth.
	if prec < 0.9 {
		t.Errorf("border precision %.3f < 0.9 (%d wrong of %d)", prec, wrong, res.ASCount)
	}
}

func TestBordersRecallOfRoutedNeighbors(t *testing.T) {
	// Every neighbor that actually carries traffic from the VP to some
	// routed prefix should be discovered. Neighbors never on any best
	// path (e.g. backup providers) legitimately stay invisible, so
	// compare against the set of neighbors appearing as first AS hop in
	// ground-truth paths.
	traces, isp := campaignFor(t, "bed-us")
	an := world.Access[isp]
	orgSet := map[topology.ASN]bool{}
	for _, o := range an.Org.ASNs {
		orgSet[o] = true
	}
	reachable := map[topology.ASN]bool{}
	vpASN := func() topology.ASN {
		for _, vp := range world.ArkVPs {
			if vp.Label == "bed-us" {
				return vp.Host.Endpoint.ASN
			}
		}
		return 0
	}()
	for _, dst := range world.Topo.ASNs() {
		p := world.Routes.Path(vpASN, dst)
		for i := 1; i < len(p); i++ {
			if orgSet[p[i-1]] && !orgSet[p[i]] {
				reachable[p[i]] = true
				break
			}
		}
	}
	res := Run(traces, optsFor(isp))
	found := map[topology.ASN]bool{}
	for _, b := range res.Borders {
		found[b.Neighbor] = true
	}
	missed := 0
	for n := range reachable {
		if !found[n] {
			missed++
		}
	}
	recall := 1 - float64(missed)/float64(len(reachable))
	if recall < 0.85 {
		t.Errorf("border recall %.3f < 0.85 (missed %d of %d)", recall, missed, len(reachable))
	}
}

func TestRelationshipClassification(t *testing.T) {
	traces, isp := campaignFor(t, "bed-us")
	res := Run(traces, optsFor(isp))
	cust := res.ByRel[topology.RelCustomer]
	peer := res.ByRel[topology.RelPeer]
	if cust.AS == 0 {
		t.Error("Comcast VP should see customer borders")
	}
	if peer.AS == 0 {
		t.Error("Comcast VP should see peer borders")
	}
	// Comcast sells transit: customers dominate (Table 3 shape).
	if cust.AS <= peer.AS {
		t.Errorf("customers (%d) should outnumber peers (%d) for Comcast", cust.AS, peer.AS)
	}
	// Router-level counts at least match AS-level.
	if res.RouterCount < res.ASCount {
		t.Errorf("router count %d below AS count %d", res.RouterCount, res.ASCount)
	}
}

func TestSmallISPSeesFewerBorders(t *testing.T) {
	tc, _ := campaignFor(t, "bed-us")
	comcast := Run(tc, optsFor("Comcast"))
	tf, _ := campaignFor(t, "igx-us")
	frontier := Run(tf, optsFor("Frontier"))
	if frontier.ASCount >= comcast.ASCount {
		t.Errorf("Frontier borders (%d) should be far fewer than Comcast (%d)",
			frontier.ASCount, comcast.ASCount)
	}
}

func TestCoverageSetsSubsetOfBorders(t *testing.T) {
	campaign, isp := campaignFor(t, "mnz-us")
	var vp topogen.ArkVP
	for _, v := range world.ArkVPs {
		if v.Label == "mnz-us" {
			vp = v
		}
	}
	mlabTraces := platform.Campaign(world, vp.Host.Endpoint,
		platform.HostTargets(world.MLabServers()), traceroute.Clean(), 4)

	all := append(append([]*traceroute.Trace{}, campaign...), mlabTraces...)
	az := NewAnalyzer(all, optsFor(isp))
	res := az.Borders(campaign)
	asCov, routerCov := az.CoverageSets(mlabTraces)

	borderSet := map[topology.ASN]bool{}
	for _, b := range res.Borders {
		borderSet[b.Neighbor] = true
	}
	inBorders := 0
	for n := range asCov {
		if borderSet[n] {
			inBorders++
		}
	}
	if len(asCov) == 0 {
		t.Fatal("no coverage at all")
	}
	if inBorders == 0 {
		t.Error("covered neighbors disjoint from campaign borders")
	}
	// Coverage is a small fraction of all borders (the Figure 2 point).
	if len(asCov)*3 > res.ASCount {
		t.Errorf("M-Lab covers %d of %d AS borders; expected a small fraction",
			len(asCov), res.ASCount)
	}
	if len(routerCov) == 0 {
		t.Error("no router-level coverage")
	}
}

func TestFirstCrossingSkipsUnusableTraces(t *testing.T) {
	traces, isp := campaignFor(t, "bed-us")
	az := NewAnalyzer(traces, optsFor(isp))
	// A trace that never leaves the org (destination inside Comcast)
	// yields no crossing.
	none := 0
	for _, tr := range traces {
		if _, ok := az.FirstCrossing(tr); !ok {
			none++
		}
	}
	if none == 0 {
		t.Error("expected some intra-network traces without crossings")
	}
}

func BenchmarkBdrmapRun(b *testing.B) {
	traces, isp := campaignFor(b, "bed-us")
	opts := optsFor(isp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(traces, opts)
	}
}

// TestBordersWithInferredRelationships runs the full bdrmap analysis
// with asrank-inferred relationships instead of ground truth — the
// paper's actual setup, where CAIDA's AS-rank supplies the rel data.
func TestBordersWithInferredRelationships(t *testing.T) {
	traces, isp := campaignFor(t, "bed-us")

	// Build collector feeds and infer relationships.
	var paths [][]topology.ASN
	asns := world.Topo.ASNs()
	for vi := 0; vi < len(asns); vi += len(asns)/20 + 1 {
		for _, origin := range asns {
			if p := world.Routes.Path(asns[vi], origin); len(p) >= 2 {
				paths = append(paths, p)
			}
		}
	}
	inferred := asrank.Infer(paths, asrank.DefaultConfig())

	opts := optsFor(isp)
	orgASNs := world.Access[isp].Org.ASNs
	opts.Rel = func(n topology.ASN) topology.Rel {
		for _, o := range orgASNs {
			if r := inferred.Rel(o, n); r != topology.RelNone {
				return r
			}
		}
		return topology.RelNone
	}
	res := Run(traces, opts)
	if res.ASCount < 5 {
		t.Fatal("no borders with inferred rels")
	}
	cust := res.ByRel[topology.RelCustomer]
	peer := res.ByRel[topology.RelPeer]
	if cust.AS == 0 || peer.AS == 0 {
		t.Errorf("inferred-rel split degenerate: cust=%d peer=%d unknown=%d",
			cust.AS, peer.AS, res.ByRel[topology.RelNone].AS)
	}
	// The Table 3 shape must survive inference noise: customers dominate.
	if cust.AS <= peer.AS {
		t.Errorf("customers (%d) should outnumber peers (%d) under inferred rels", cust.AS, peer.AS)
	}
}
