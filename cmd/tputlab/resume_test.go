package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"throughputlab/internal/checkpoint"
	"throughputlab/internal/experiments"
	"throughputlab/internal/platform"
	"throughputlab/internal/report"
	"throughputlab/internal/topogen"
)

// TestResumeFlagConflicts pins the fail-fast validation: every
// campaign-identity flag explicitly set alongside -resume is named,
// non-identity flags (workers, telemetry) pass, and defaults left
// untouched are not false positives.
func TestResumeFlagConflicts(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"no_flags", []string{"-resume", "m.json"}, nil},
		{"non_identity_ok", []string{"-resume", "m.json", "-parallel", "4", "-metrics", "-pipeline", "2", "-checkpoint-every", "1", "-progress"}, nil},
		{"scale", []string{"-resume", "m.json", "-scale", "large"}, []string{"-scale"}},
		{"seed", []string{"-resume", "m.json", "-seed", "2"}, []string{"-seed"}},
		{"tests", []string{"-resume", "m.json", "-tests", "100"}, []string{"-tests"}},
		{"faults", []string{"-resume", "m.json", "-faults", "heavy"}, []string{"-faults"}},
		{"faultseed", []string{"-resume", "m.json", "-faultseed", "9"}, []string{"-faultseed"}},
		{"format", []string{"-resume", "m.json", "-corpus-format", "columnar"}, []string{"-corpus-format"}},
		{"chunk_tests", []string{"-resume", "m.json", "-chunk-tests", "32"}, []string{"-chunk-tests"}},
		{"several", []string{"-resume", "m.json", "-seed", "2", "-scale", "large", "-faults", "light"},
			[]string{"-faults", "-scale", "-seed"}}, // flag.Visit reports in lexical order
		{"same_value_still_conflicts", []string{"-resume", "m.json", "-seed", "1"}, []string{"-seed"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("run", flag.ContinueOnError)
			addCommonFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			got := resumeFlagConflicts(fs)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("conflicts = %v, want %v", got, tc.want)
			}
			err := checkResumeFlags(fs)
			if len(tc.want) == 0 && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			for _, flagName := range tc.want {
				if err == nil || !bytes.Contains([]byte(err.Error()), []byte(flagName)) {
					t.Fatalf("error %v does not name %s", err, flagName)
				}
			}
		})
	}
}

// TestResumeCampaignEndToEnd drives the real CLI plumbing through an
// interrupt and a resume: a campaign with -corpus-out is cancelled
// (cause ErrInterrupted, exactly how the signal handler does it) after
// two published chunks, leaving a partial corpus plus manifest; then
// resumeCampaign rebuilds it from the manifest alone. Both the
// rendered report and the published corpus bytes must be identical to
// an uninterrupted run's.
func TestResumeCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds worlds")
	}
	dir := t.TempDir()

	chunked := func() experiments.Options {
		opts := formatOpts(t, "off")
		opts.Collect.ChunkTests = 64 // 600 tests -> 10 chunks
		return opts
	}

	// Uninterrupted reference: corpus bytes and rendered report.
	refPath := filepath.Join(dir, "ref.corpus")
	refOpts := chunked()
	refSeal := teeCorpus(refPath, "ndjson", &refOpts, "small", 1)
	refEnv, err := experiments.NewEnv(refOpts)
	if err = refSeal(err); err != nil {
		t.Fatal(err)
	}
	wantReport := report.Build(refEnv, report.DefaultConfig()).Render()
	wantCorpus, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel with the signal handler's cause once two
	// chunks have been published to the sink.
	finalPath := filepath.Join(dir, "resumed.corpus")
	intOpts := chunked()
	seal := teeCorpus(finalPath, "ndjson", &intOpts, "small", 1)
	inner := intOpts.CorpusSink
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	intOpts.CorpusSink = func(w *topogen.World) (func(*platform.Chunk) error, error) {
		sink, err := inner(w)
		if err != nil {
			return nil, err
		}
		n := 0
		return func(c *platform.Chunk) error {
			if err := sink(c); err != nil {
				return err
			}
			if n++; n == 2 {
				cancel(platform.ErrInterrupted)
			}
			return nil
		}, nil
	}
	_, runErr := experiments.NewEnvCtx(ctx, intOpts)
	runErr = seal(runErr)
	if !errors.Is(runErr, platform.ErrInterrupted) {
		t.Fatalf("interrupted campaign returned %v, want ErrInterrupted", runErr)
	}
	if _, err := os.Stat(finalPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("interrupted campaign published a corpus")
	}
	mpath := checkpoint.ManifestPath(finalPath)
	m, err := checkpoint.LoadManifest(mpath)
	if err != nil {
		t.Fatalf("interrupt left no loadable manifest: %v", err)
	}
	if m.Durable.Chunks < 2 {
		t.Fatalf("manifest records %d durable chunks, want >= 2", m.Durable.Chunks)
	}

	// Resume purely from the manifest, the way `run -resume` does.
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	cf := addCommonFlags(fs)
	if err := fs.Parse([]string{"-resume", mpath, "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	env, _, err := resumeCampaign(context.Background(), cf)
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Build(env, report.DefaultConfig()).Render(); got != wantReport {
		t.Error("resumed report differs from uninterrupted run")
	}
	gotCorpus, err := os.ReadFile(finalPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCorpus, wantCorpus) {
		t.Errorf("resumed corpus differs from uninterrupted run (%d vs %d bytes)", len(gotCorpus), len(wantCorpus))
	}
	for _, p := range []string{mpath, checkpoint.PartialPath(finalPath)} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s survived successful resume", p)
		}
	}
}
