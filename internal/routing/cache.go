package routing

import (
	"sync"

	"throughputlab/internal/obs"
	"throughputlab/internal/topology"
)

// The resolver's memoization layer. Every simulated NDT test resolves
// two router-level paths and every Paris traceroute one more, but the
// inputs repeat heavily — a campaign draws from a fixed set of
// (server, client-pool) pairs — so the three expensive pieces of
// Resolve are pure functions of small keys over an immutable topology:
//
//   - the intra-AS segment walked between an entry and an exit router;
//   - the scored near-tie set of interdomain links for one
//     (fromAS, toAS, current metro, destination metro) crossing;
//   - the AS-level path between two ASes.
//
// Each gets a sharded map guarded by an RWMutex. Values are built
// once, never mutated afterwards, and shared by reference; because the
// computation is deterministic, two workers racing on a cold key
// compute identical values and either store wins. This keeps cached
// resolution byte-identical to uncached resolution (asserted by
// TestCachedResolverByteIdentical) and safe under CollectParallel's
// worker pool (asserted under -race by TestResolverConcurrentWarmup).

// cacheShards bounds lock contention during warm-up; hit paths take
// only an RLock.
const cacheShards = 64

// segKey identifies one intra-AS segment: the walk is a pure function
// of the (entry, exit) router pair.
type segKey struct {
	from, to topology.RouterID
}

// interKey identifies one interdomain link choice set. Metros are
// matrix indices, not strings, so hashing the key is cheap.
type interKey struct {
	from, to           topology.ASN
	curMetro, dstMetro int32
}

type segShard struct {
	mu sync.RWMutex
	m  map[segKey][]Hop
}

type interShard struct {
	mu sync.RWMutex
	m  map[interKey][]*topology.Link
}

type asPathShard struct {
	mu sync.RWMutex
	m  map[[2]topology.ASN][]topology.ASN
}

type resolverCache struct {
	seg    [cacheShards]segShard
	inter  [cacheShards]interShard
	asPath [cacheShards]asPathShard
}

func newResolverCache() *resolverCache {
	c := &resolverCache{}
	for i := 0; i < cacheShards; i++ {
		c.seg[i].m = make(map[segKey][]Hop)
		c.inter[i].m = make(map[interKey][]*topology.Link)
		c.asPath[i].m = make(map[[2]topology.ASN][]topology.ASN)
	}
	return c
}

func (k segKey) shard() int {
	return (int(k.from)*31 + int(k.to)) & (cacheShards - 1)
}

func (k interKey) shard() int {
	return (int(k.from)*131 + int(k.to)*31 + int(k.curMetro)*7 + int(k.dstMetro)) & (cacheShards - 1)
}

func asPathShardOf(k [2]topology.ASN) int {
	return (int(k[0])*31 + int(k[1])) & (cacheShards - 1)
}

// Stats is a snapshot of the resolver's cache and fallback counters.
// Hits and misses count lookups while caching is enabled; miss counts
// can exceed the number of distinct keys when workers race on a cold
// key (both compute, either store). CoreFallbacks counts coreAt calls
// that found no router in the requested metro and fell back to the
// AS's deterministic any-router — a nonzero value on a generated
// topology usually means a topology bug that metro-keyed cache entries
// would otherwise silently absorb.
type Stats struct {
	SegmentHits, SegmentMisses uint64
	InterHits, InterMisses     uint64
	ASPathHits, ASPathMisses   uint64
	CoreFallbacks              uint64
}

// resolverCounters holds the resolver's obs handles. They are bound to
// a private registry by New so Stats always works, and rebound onto a
// shared registry by Observe when the pipeline is instrumented.
type resolverCounters struct {
	segHits, segMisses       *obs.Counter
	interHits, interMisses   *obs.Counter
	asPathHits, asPathMisses *obs.Counter
	coreFallbacks            *obs.Counter
	// resolveHops is the router-hop-count distribution over resolved
	// paths; interCandidates is the near-tie set size distribution over
	// distinct interdomain crossings (recorded on the compute path, so
	// it describes the key space rather than the traffic mix).
	resolveHops     *obs.Histogram
	interCandidates *obs.Histogram
}

// bindObs (re)creates the resolver's metric handles on the given
// registry.
func (rv *Resolver) bindObs(reg *obs.Registry) {
	rv.counters = resolverCounters{
		segHits:         reg.Counter("resolver.segment.hits"),
		segMisses:       reg.Counter("resolver.segment.misses"),
		interHits:       reg.Counter("resolver.inter.hits"),
		interMisses:     reg.Counter("resolver.inter.misses"),
		asPathHits:      reg.Counter("resolver.aspath.hits"),
		asPathMisses:    reg.Counter("resolver.aspath.misses"),
		coreFallbacks:   reg.Counter("resolver.core.fallbacks"),
		resolveHops:     reg.Histogram("resolver.resolve.hops", obs.Bounds(2, 4, 6, 8, 12, 16, 24)),
		interCandidates: reg.Histogram("resolver.inter.candidates", obs.Bounds(1, 2, 3, 4, 6, 8)),
	}
}

// Observe rebinds the resolver's counters and histograms onto the given
// registry, so an instrumented run reports them alongside the rest of
// the pipeline. Counters restart from the registry's current values
// (zero on a fresh registry). Like DisableCache, Observe must be called
// before the resolver is shared across goroutines; at most one resolver
// should observe a given registry (names would collide otherwise).
func (rv *Resolver) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	rv.bindObs(reg)
}

// Stats returns a snapshot of the resolver's counters.
func (rv *Resolver) Stats() Stats {
	return Stats{
		SegmentHits:   rv.counters.segHits.Value(),
		SegmentMisses: rv.counters.segMisses.Value(),
		InterHits:     rv.counters.interHits.Value(),
		InterMisses:   rv.counters.interMisses.Value(),
		ASPathHits:    rv.counters.asPathHits.Value(),
		ASPathMisses:  rv.counters.asPathMisses.Value(),
		CoreFallbacks: rv.counters.coreFallbacks.Value(),
	}
}

// segment returns the hop sequence appended when walking from router
// from to router to inside one AS (excluding the starting router, whose
// hop is already on the path). The returned slice is shared and must
// not be mutated.
func (rv *Resolver) segment(from, to *topology.Router) ([]Hop, error) {
	if rv.noCache {
		return rv.computeSegment(from, to)
	}
	k := segKey{from: from.ID, to: to.ID}
	sh := &rv.cache.seg[k.shard()]
	sh.mu.RLock()
	steps, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		rv.counters.segHits.Add(1)
		return steps, nil
	}
	rv.counters.segMisses.Add(1)
	steps, err := rv.computeSegment(from, to)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if prior, ok := sh.m[k]; ok {
		steps = prior // keep the first stored value so sharing is stable
	} else {
		sh.m[k] = steps
	}
	sh.mu.Unlock()
	return steps, nil
}

// interChoices returns the sorted near-tie set of interdomain links for
// one AS crossing. The returned slice is shared and must not be
// mutated; the caller picks one member by flow hash.
func (rv *Resolver) interChoices(k interKey) ([]*topology.Link, error) {
	if rv.noCache {
		return rv.computeInterChoices(k)
	}
	sh := &rv.cache.inter[k.shard()]
	sh.mu.RLock()
	eq, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		rv.counters.interHits.Add(1)
		return eq, nil
	}
	rv.counters.interMisses.Add(1)
	eq, err := rv.computeInterChoices(k)
	if err != nil {
		return nil, err
	}
	sh.mu.Lock()
	if prior, ok := sh.m[k]; ok {
		eq = prior
	} else {
		sh.m[k] = eq
	}
	sh.mu.Unlock()
	return eq, nil
}

// asPath returns the AS-level path from src to dst (nil when
// unreachable). The returned slice is shared across every Path that
// carries it and must not be mutated.
func (rv *Resolver) asPath(src, dst topology.ASN) []topology.ASN {
	if rv.noCache {
		return rv.routes.Path(src, dst)
	}
	k := [2]topology.ASN{src, dst}
	sh := &rv.cache.asPath[asPathShardOf(k)]
	sh.mu.RLock()
	p, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		rv.counters.asPathHits.Add(1)
		return p
	}
	rv.counters.asPathMisses.Add(1)
	p = rv.routes.Path(src, dst)
	if p == nil {
		return nil // don't cache unreachable pairs; they error out anyway
	}
	sh.mu.Lock()
	if prior, ok := sh.m[k]; ok {
		p = prior
	} else {
		sh.m[k] = p
	}
	sh.mu.Unlock()
	return p
}
