package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"testing"

	"throughputlab/internal/experiments"
	"throughputlab/internal/export"
	"throughputlab/internal/faults"
)

// formatOpts assembles a small campaign the way reportCmd would, with
// the given fault profile.
func formatOpts(t *testing.T, profile string) experiments.Options {
	t.Helper()
	opts, err := scaleOptions("small")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := faults.ByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	opts.Topo.Seed = 1
	opts.Collect.Tests = 600
	opts.Collect.Faults = prof
	opts.Workers = 2
	return opts
}

// datasetHash digests every field of a materialized corpus that
// downstream inference consumes (the corpusHash idiom from the
// platform shard tests, applied to an export dataset), so the two
// on-disk formats hash equal only if they are observably identical.
func datasetHash(d *export.Dataset) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "tests=%d traces=%d missing=%d\n", len(d.Tests), len(d.Traces), d.TestsWithoutTrace)
	for _, t := range d.Tests {
		fmt.Fprintf(h, "t %d %d %d %d %d %.9g %.9g %.9g %.9g %d\n",
			t.ID, uint32(t.ClientAddr), uint32(t.ServerAddr), t.StartMinute, t.FlowEntropy,
			t.DownMbps, t.UpMbps, t.RTTms, t.RetransRate, t.TruthBottleneck)
	}
	for _, tr := range d.Traces {
		fmt.Fprintf(h, "r %d %d %d %d %v", uint32(tr.SrcAddr), uint32(tr.DstAddr),
			tr.LaunchMinute, tr.FlowEntropy, tr.Reached)
		for _, hop := range tr.Hops {
			fmt.Fprintf(h, " %d", uint32(hop.Addr))
		}
		fmt.Fprintln(h)
	}
	return h.Sum64()
}

// TestCorpusFormatsReportParity is the round-trip property test across
// the two corpus formats: one campaign persisted as NDJSON and as
// columnar yields byte-identical rendered reports — from either file,
// at every worker count — and the materialized corpora hash equal.
// Run once clean and once under the heavy fault profile, so the parity
// covers truncated tests, lost traces, and the completeness ledger.
func TestCorpusFormatsReportParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds worlds")
	}
	for _, profile := range []string{"off", "heavy"} {
		t.Run(profile, func(t *testing.T) {
			dir := t.TempDir()
			paths := map[string]string{
				"ndjson":   dir + "/corpus.ndjson",
				"columnar": dir + "/corpus.tpc",
			}
			baseline := ""
			for _, format := range []string{"ndjson", "columnar"} {
				out, err := reportStreamed(context.Background(), formatOpts(t, profile), nil, "small", paths[format], format, 0)
				if err != nil {
					t.Fatalf("reportStreamed %s: %v", format, err)
				}
				if baseline == "" {
					baseline = out
				} else if out != baseline {
					t.Fatalf("streamed report differs when persisting %s", format)
				}
			}
			var hashes []uint64
			for format, path := range paths {
				f, err := os.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				d, err := export.Read(f)
				f.Close()
				if err != nil {
					t.Fatalf("materializing %s corpus: %v", format, err)
				}
				hashes = append(hashes, datasetHash(d))
				for _, workers := range []int{1, 2, 8} {
					opts := formatOpts(t, profile)
					opts.Workers = workers
					out, err := reportFromCorpus(path, "", opts, nil)
					if err != nil {
						t.Fatalf("reportFromCorpus %s workers=%d: %v", format, workers, err)
					}
					if out != baseline {
						t.Errorf("report from %s corpus at workers=%d differs from streamed baseline", format, workers)
					}
				}
				// The explicit -corpus-format path must agree with
				// auto-detection.
				out, err := reportFromCorpus(path, format, formatOpts(t, profile), nil)
				if err != nil {
					t.Fatalf("reportFromCorpus -corpus-format %s: %v", format, err)
				}
				if out != baseline {
					t.Errorf("report with explicit format %s differs", format)
				}
			}
			if hashes[0] != hashes[1] {
				t.Errorf("corpus hashes differ between formats: %x != %x", hashes[0], hashes[1])
			}
		})
	}
}

// TestCorpusFormatMismatchError pins the CLI-level satellite: reporting
// over a columnar file while forcing -corpus-format ndjson fails with
// an error naming the detected format, not a parse error.
func TestCorpusFormatMismatchError(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a world")
	}
	path := t.TempDir() + "/corpus.tpc"
	if _, err := reportStreamed(context.Background(), formatOpts(t, "off"), nil, "small", path, "columnar", 0); err != nil {
		t.Fatal(err)
	}
	_, err := reportFromCorpus(path, "ndjson", formatOpts(t, "off"), nil)
	if err == nil {
		t.Fatal("forcing ndjson on a columnar corpus should error")
	}
	if got := err.Error(); !strings.Contains(got, "columnar") || !strings.Contains(got, "NDJSON") {
		t.Errorf("mismatch error does not name both formats: %v", err)
	}
}
